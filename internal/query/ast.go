package query

import (
	"fmt"
	"strings"

	"cbfww/internal/core"
	"cbfww/internal/object"
)

// Modifier is the usage-based SELECT modifier of §4.3.
type Modifier int

// The four modifiers plus None.
const (
	ModNone Modifier = iota
	ModMRU           // most recently used first
	ModLRU           // least recently used first
	ModMFU           // most frequently used first
	ModLFU           // least frequently used first
)

// String names the modifier as written in queries.
func (m Modifier) String() string {
	switch m {
	case ModMRU:
		return "MRU"
	case ModLRU:
		return "LRU"
	case ModMFU:
		return "MFU"
	case ModLFU:
		return "LFU"
	default:
		return ""
	}
}

// Query is a parsed SELECT statement.
type Query struct {
	// Modifier orders results by usage; Limit bounds them. Per the paper a
	// bare modifier returns the single top object ("the system will ...
	// choose the most frequently used one"); an explicit count widens
	// that. Limit is 0 when no modifier and no count were given (= all).
	Modifier Modifier
	Limit    int
	// Fields are the projected attributes; empty means SELECT *.
	Fields []FieldRef
	// Class is the queried collection; Alias binds rows in WHERE.
	Class object.Kind
	Alias string
	// Where is nil when absent.
	Where Expr
}

// FieldRef names alias.field.
type FieldRef struct {
	Alias string
	Field string
}

// String renders the reference.
func (f FieldRef) String() string { return f.Alias + "." + f.Field }

// Expr is a WHERE-clause expression node.
type Expr interface {
	// String renders the expression approximately as parsed.
	String() string
}

// BinExpr is a binary operation: comparisons (=, !=, <, <=, >, >=) and the
// logical AND/OR.
type BinExpr struct {
	Op   string
	L, R Expr
}

func (e *BinExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R)
}

// NotExpr negates its operand.
type NotExpr struct{ X Expr }

func (e *NotExpr) String() string { return "NOT " + e.X.String() }

// MentionExpr is `field MENTION 'phrase'`: true when the field's text
// contains every term of the phrase.
type MentionExpr struct {
	Field  FieldRef
	Phrase string
}

func (e *MentionExpr) String() string {
	return fmt.Sprintf("%s MENTION %q", e.Field, e.Phrase)
}

// InExpr is `x IN set` where set is a sub-query or a set-valued field.
type InExpr struct {
	X   Expr
	Set Expr
}

func (e *InExpr) String() string { return fmt.Sprintf("%s IN %s", e.X, e.Set) }

// ExistsExpr is `EXISTS (sub-query)`.
type ExistsExpr struct{ Sub *Query }

func (e *ExistsExpr) String() string { return "EXISTS (...)" }

// SubqueryExpr wraps a nested SELECT used as a value set.
type SubqueryExpr struct{ Sub *Query }

func (e *SubqueryExpr) String() string { return "(SELECT ...)" }

// CallExpr is a function application, e.g. end_at(l.oid).
type CallExpr struct {
	Name string
	Args []Expr
}

func (e *CallExpr) String() string {
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.String()
	}
	return e.Name + "(" + strings.Join(args, ", ") + ")"
}

// FieldExpr reads alias.field from the bound row.
type FieldExpr struct{ Ref FieldRef }

func (e *FieldExpr) String() string { return e.Ref.String() }

// LitExpr is a literal string or number.
type LitExpr struct {
	Str   string
	Num   int64
	IsNum bool
}

func (e *LitExpr) String() string {
	if e.IsNum {
		return fmt.Sprintf("%d", e.Num)
	}
	return fmt.Sprintf("%q", e.Str)
}

// classNames maps FROM-clause class names to hierarchy kinds. Both the
// paper's spelling and short forms are accepted.
var classNames = map[string]object.Kind{
	"raw_object":      object.KindRaw,
	"raw_web_object":  object.KindRaw,
	"physical_page":   object.KindPhysical,
	"logical_page":    object.KindLogical,
	"semantic_region": object.KindRegion,
}

// KindForClass resolves a FROM-clause class name (case-insensitive).
func KindForClass(name string) (object.Kind, bool) {
	k, ok := classNames[strings.ToLower(name)]
	return k, ok
}

// ClassForKind returns the canonical class name of a kind.
func ClassForKind(k object.Kind) string {
	switch k {
	case object.KindRaw:
		return "Raw_Object"
	case object.KindPhysical:
		return "Physical_Page"
	case object.KindLogical:
		return "Logical_Page"
	case object.KindRegion:
		return "Semantic_Region"
	default:
		return "Unknown"
	}
}

// Row is one result row: the projected field values in SELECT order.
type Row struct {
	ID     core.ObjectID
	Values []Value
}

// Value is a dynamically typed query value.
type Value struct {
	Kind ValueKind
	Str  string
	Num  int64
	ID   core.ObjectID
	Set  map[core.ObjectID]bool
	Bool bool
}

// ValueKind discriminates Value.
type ValueKind int

// Value kinds.
const (
	ValStr ValueKind = iota
	ValNum
	ValID
	ValIDSet
	ValBool
)

// String renders the value for result tables.
func (v Value) String() string {
	switch v.Kind {
	case ValStr:
		return v.Str
	case ValNum:
		return fmt.Sprintf("%d", v.Num)
	case ValID:
		return v.ID.String()
	case ValBool:
		return fmt.Sprintf("%v", v.Bool)
	case ValIDSet:
		return fmt.Sprintf("{%d ids}", len(v.Set))
	default:
		return "?"
	}
}
