package peers

import (
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"cbfww/internal/resilience"
)

// Peer protocol headers. From carries the comma-separated hop list of
// nodes a cluster-internal request has passed through (the loop guard: a
// node finding itself in the list serves locally, so multi-hop replica
// chains flow but true cycles stop); Node names the node whose warehouse
// actually served a response; Owner names the primary owner the ring
// assigns the URL to — together they make routing observable from any
// response.
const (
	HeaderFrom  = "X-CBFWW-From"
	HeaderNode  = "X-CBFWW-Node"
	HeaderOwner = "X-CBFWW-Owner"
)

// Config tunes the cluster tier.
type Config struct {
	// VNodes is the virtual-node count per member (<= 0 uses
	// DefaultVNodes).
	VNodes int
	// Timeout bounds one peer HTTP exchange (proxy attempt or probe).
	// <= 0 defaults to 2s — peers are LAN-close; a peer slower than the
	// origin budget is not worth waiting on.
	Timeout time.Duration
	// Retry is the per-peer retry budget for proxy calls. Zero values
	// default to 2 attempts with 25ms base backoff: one fast retry, then
	// route around.
	Retry resilience.RetryPolicy
	// Breaker is the per-peer circuit breaker; a zero Threshold defaults
	// to 3 consecutive failures (cool-down defaults inside resilience).
	Breaker resilience.BreakerConfig
	// Now overrides the breaker clock (tests); nil means time.Now.
	Now func() time.Time
	// Transport overrides the peer HTTP transport (tests); nil uses
	// http.DefaultTransport.
	Transport http.RoundTripper
	// Replicas is the ownership replica-set size R: every URL is owned by
	// the first R distinct ring successors, primary first. <= 0 defaults
	// to DefaultReplicas; it is capped at the member count at lookup time.
	Replicas int
	// ProbeInterval paces the active health prober (jittered per round);
	// <= 0 defaults to 1s. The prober only runs after Start.
	ProbeInterval time.Duration
	// ProbeThreshold is how many consecutive failed health probes mark a
	// peer Down; <= 0 defaults to 3.
	ProbeThreshold int
	// HandoffLimit bounds each Down peer's hinted-handoff queue; when full
	// the oldest hint is dropped (and counted). <= 0 defaults to 128.
	HandoffLimit int
	// ReplicationQueue bounds the async replication queue shared by all
	// peers; a full queue drops the newest job (and counts it) rather than
	// block the admitting request. <= 0 defaults to 256.
	ReplicationQueue int
}

// DefaultReplicas is the default ownership replica-set size: primary plus
// one follower, the smallest R at which losing a node loses no bytes.
const DefaultReplicas = 2

// peerCounters is one peer's activity ledger, all atomics so the request
// path never takes the cluster lock to count.
type peerCounters struct {
	proxied       atomic.Uint64 // full requests we forwarded to this peer
	proxyFailures atomic.Uint64 // proxy attempts that died in transit or 5xx'd
	redirects     atomic.Uint64 // 307s we issued pointing at this peer
	forwarded     atomic.Uint64 // requests we served that this peer sent us
	peerHits      atomic.Uint64 // resident-only probes this peer answered
	peerMisses    atomic.Uint64 // resident-only probes this peer 404'd
	probeFailures atomic.Uint64 // probes that died in transit or 5xx'd
	routedAround  atomic.Uint64 // requests served locally because this peer was down or breaker-open

	// Health view (the active prober's verdict; zero value = Up).
	down           atomic.Bool   // consecutive health-probe failures crossed the threshold
	consecFails    atomic.Int32  // current health-probe failure streak
	healthProbes   atomic.Uint64 // health probes sent
	healthFailures atomic.Uint64 // health probes that failed
	wentDown       atomic.Uint64 // Up -> Down transitions
	wentUp         atomic.Uint64 // Down -> Up transitions

	// Replication + hinted handoff.
	replicated      atomic.Uint64 // admitted payloads pushed to this peer
	replicateFails  atomic.Uint64 // pushes that died in transit or were refused
	replicaReceived atomic.Uint64 // payloads this peer pushed to us
	handoffParked   atomic.Uint64 // hints parked while this peer was down
	handoffDropped  atomic.Uint64 // hints evicted from a full queue (oldest first)
	handoffDrained  atomic.Uint64 // hints delivered after the peer recovered
}

// clusterState is the swapped-atomically membership view.
type clusterState struct {
	self  string
	ring  *Ring
	peers []string // ring members minus self, sorted
}

// Cluster is one node's view of the peer ring: membership, ownership
// lookup, the peer HTTP client, per-peer breakers and counters. Safe for
// concurrent use; a zero-configured cluster (before Configure) behaves as
// a disabled single node.
type Cluster struct {
	cfg      Config
	client   *http.Client
	breakers *resilience.Breakers

	state atomic.Pointer[clusterState]

	mu       sync.Mutex
	counters map[string]*peerCounters // by peer address, survives reconfiguration

	// Replication machinery (handoff.go) and the health prober
	// (health.go). repq is created in NewCluster; the prober goroutine and
	// the replication worker only run between Start and Stop.
	handoff            *handoffQueue
	repq               chan repJob
	replicationDropped atomic.Uint64

	lifeMu sync.Mutex // guards stop/wg across Start/Stop
	stop   chan struct{}
	wg     sync.WaitGroup
}

// NewCluster builds an unconfigured cluster tier. It is inert — every
// Owner lookup says "self", FetchResident always misses — until Configure
// names the membership.
func NewCluster(cfg Config) *Cluster {
	if cfg.VNodes <= 0 {
		cfg.VNodes = DefaultVNodes
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Second
	}
	if cfg.Retry.MaxAttempts < 1 {
		cfg.Retry.MaxAttempts = 2
	}
	if cfg.Retry.BaseBackoff <= 0 {
		cfg.Retry.BaseBackoff = 25 * time.Millisecond
	}
	if cfg.Breaker.Threshold == 0 {
		cfg.Breaker.Threshold = 3
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = DefaultReplicas
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = time.Second
	}
	if cfg.ProbeThreshold <= 0 {
		cfg.ProbeThreshold = 3
	}
	if cfg.HandoffLimit <= 0 {
		cfg.HandoffLimit = 128
	}
	if cfg.ReplicationQueue <= 0 {
		cfg.ReplicationQueue = 256
	}
	c := &Cluster{
		cfg:      cfg,
		client:   &http.Client{Timeout: cfg.Timeout, Transport: cfg.Transport},
		breakers: resilience.NewBreakers(cfg.Breaker, cfg.Now),
		counters: make(map[string]*peerCounters),
		handoff:  newHandoffQueue(cfg.HandoffLimit),
		repq:     make(chan repJob, cfg.ReplicationQueue),
	}
	return c
}

// Configure installs (or replaces) the membership: self's advertised
// address plus every member address, self included or not — it is added
// if missing. Existing per-peer counters survive reconfiguration, so a
// node that leaves and rejoins keeps its history.
func (c *Cluster) Configure(self string, members []string) {
	all := make([]string, 0, len(members)+1)
	all = append(all, members...)
	all = append(all, self)
	ring := NewRing(c.cfg.VNodes, all)
	peersOnly := make([]string, 0, len(ring.Members()))
	for _, m := range ring.Members() {
		if m != self {
			peersOnly = append(peersOnly, m)
		}
	}
	c.mu.Lock()
	for _, p := range peersOnly {
		if c.counters[p] == nil {
			c.counters[p] = &peerCounters{}
		}
	}
	c.mu.Unlock()
	c.state.Store(&clusterState{self: self, ring: ring, peers: peersOnly})
}

// Enabled reports whether Configure has run: an enabled cluster always
// has a self identity, even with no peers (the single-node cluster).
func (c *Cluster) Enabled() bool {
	return c != nil && c.state.Load() != nil
}

// Self returns this node's advertised address ("" before Configure).
func (c *Cluster) Self() string {
	if c == nil {
		return ""
	}
	if st := c.state.Load(); st != nil {
		return st.self
	}
	return ""
}

// Peers returns the other members, sorted (nil before Configure).
func (c *Cluster) Peers() []string {
	if c == nil {
		return nil
	}
	if st := c.state.Load(); st != nil {
		return st.peers
	}
	return nil
}

// Owner returns the address owning url and whether that is this node.
// Before Configure (or on a self-only ring) every URL is self-owned.
func (c *Cluster) Owner(url string) (addr string, isSelf bool) {
	if c == nil {
		return "", true
	}
	st := c.state.Load()
	if st == nil {
		return "", true
	}
	owner := st.ring.Owner(url)
	return owner, owner == st.self || owner == ""
}

// Owners returns url's replica set — the first R distinct ring members,
// primary first — and whether this node is one of them. Before Configure
// the set is nil and self counts as a replica (the standalone node owns
// everything).
func (c *Cluster) Owners(url string) (owners []string, selfIn bool) {
	if c == nil {
		return nil, true
	}
	st := c.state.Load()
	if st == nil {
		return nil, true
	}
	owners = st.ring.Owners(url, c.cfg.Replicas)
	for _, o := range owners {
		if o == st.self {
			return owners, true
		}
	}
	return owners, len(owners) == 0
}

// Replicas returns the configured replica-set size R.
func (c *Cluster) Replicas() int {
	if c == nil {
		return 1
	}
	return c.cfg.Replicas
}

// counter returns (creating if needed) the ledger for addr.
func (c *Cluster) counter(addr string) *peerCounters {
	c.mu.Lock()
	defer c.mu.Unlock()
	pc := c.counters[addr]
	if pc == nil {
		pc = &peerCounters{}
		c.counters[addr] = pc
	}
	return pc
}

// CountForwarded records that this node served a request on from's
// behalf (the peer identified itself via HeaderFrom).
func (c *Cluster) CountForwarded(from string) {
	if c == nil || from == "" {
		return
	}
	c.counter(from).forwarded.Add(1)
}

// CountRedirect records a 307 issued toward owner.
func (c *Cluster) CountRedirect(owner string) {
	if c == nil {
		return
	}
	c.counter(owner).redirects.Add(1)
}

// CountRoutedAround records that addr was skipped by routing because it
// was Down or breaker-open.
func (c *Cluster) CountRoutedAround(addr string) {
	if c == nil || addr == "" {
		return
	}
	c.counter(addr).routedAround.Add(1)
}

// CountReplicaReceived records a /peer/put payload pushed to us by from.
func (c *Cluster) CountReplicaReceived(from string) {
	if c == nil || from == "" {
		return
	}
	c.counter(from).replicaReceived.Add(1)
}

// PeerStat is one peer's ledger plus its breaker state — the /stats
// "cluster" section row.
type PeerStat struct {
	Addr          string `json:"addr"`
	Breaker       string `json:"breaker"`
	Health        string `json:"health"` // "up" or "down" (the active prober's verdict)
	Proxied       uint64 `json:"proxied"`
	ProxyFailures uint64 `json:"proxy_failures"`
	Redirects     uint64 `json:"redirects"`
	Forwarded     uint64 `json:"forwarded"`
	PeerHits      uint64 `json:"peer_hits"`
	PeerMisses    uint64 `json:"peer_misses"`
	ProbeFailures uint64 `json:"probe_failures"`
	RoutedAround  uint64 `json:"routed_around"`

	HealthProbes   uint64 `json:"health_probes"`
	HealthFailures uint64 `json:"health_failures"`
	WentDown       uint64 `json:"went_down"`
	WentUp         uint64 `json:"went_up"`

	Replicated      uint64 `json:"replicated"`
	ReplicateFails  uint64 `json:"replicate_failures"`
	ReplicaReceived uint64 `json:"replica_received"`
	HandoffParked   uint64 `json:"handoff_parked"`
	HandoffDropped  uint64 `json:"handoff_dropped"`
	HandoffDrained  uint64 `json:"handoff_drained"`
	HandoffQueued   int    `json:"handoff_queued"`
}

// ClusterStats is the /stats "cluster" section. The section always
// renders — Peers is empty but non-nil on a single node — so dashboards
// never need a shape branch.
type ClusterStats struct {
	Enabled            bool       `json:"enabled"`
	Self               string     `json:"self"`
	Members            int        `json:"members"`
	VNodes             int        `json:"vnodes"`
	Replicas           int        `json:"replicas"`
	ReplicationDropped uint64     `json:"replication_dropped"`
	Peers              []PeerStat `json:"peers"`
}

// Stats snapshots the cluster tier. Safe on a nil cluster (the section
// still renders, disabled and empty).
func (c *Cluster) Stats() ClusterStats {
	out := ClusterStats{Peers: []PeerStat{}}
	if c == nil {
		return out
	}
	st := c.state.Load()
	if st == nil {
		out.VNodes = c.cfg.VNodes
		return out
	}
	out.Enabled = true
	out.Self = st.self
	out.Members = len(st.ring.Members())
	out.VNodes = st.ring.VNodes()
	out.Replicas = c.cfg.Replicas
	out.ReplicationDropped = c.replicationDropped.Load()
	for _, p := range st.peers {
		pc := c.counter(p)
		health := "up"
		if pc.down.Load() {
			health = "down"
		}
		out.Peers = append(out.Peers, PeerStat{
			Addr:            p,
			Breaker:         c.breakers.State(p),
			Health:          health,
			Proxied:         pc.proxied.Load(),
			ProxyFailures:   pc.proxyFailures.Load(),
			Redirects:       pc.redirects.Load(),
			Forwarded:       pc.forwarded.Load(),
			PeerHits:        pc.peerHits.Load(),
			PeerMisses:      pc.peerMisses.Load(),
			ProbeFailures:   pc.probeFailures.Load(),
			RoutedAround:    pc.routedAround.Load(),
			HealthProbes:    pc.healthProbes.Load(),
			HealthFailures:  pc.healthFailures.Load(),
			WentDown:        pc.wentDown.Load(),
			WentUp:          pc.wentUp.Load(),
			Replicated:      pc.replicated.Load(),
			ReplicateFails:  pc.replicateFails.Load(),
			ReplicaReceived: pc.replicaReceived.Load(),
			HandoffParked:   pc.handoffParked.Load(),
			HandoffDropped:  pc.handoffDropped.Load(),
			HandoffDrained:  pc.handoffDrained.Load(),
			HandoffQueued:   c.handoff.len(p),
		})
	}
	return out
}

// BreakerState exposes a peer's breaker state (tests and diagnostics).
func (c *Cluster) BreakerState(addr string) string {
	if c == nil {
		return "closed"
	}
	return c.breakers.State(addr)
}
