package peers

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	neturl "net/url"
	"strings"
	"time"

	"cbfww/internal/core"
	"cbfww/internal/simweb"
)

// PeerFetchPath is the resident-only probe endpoint every gateway mounts:
// it answers from the local warehouse or 404s — it never touches the
// origin and never consults other peers, which is what makes probe chains
// loop-free by construction.
const PeerFetchPath = "/peer/fetch"

// PeerPutPath is the replication push endpoint: a replica-set member
// POSTs an admitted payload here so the receiver can admit it without an
// origin fetch. Best-effort — the receiver may reject (admission
// constraints) and the sender does not care.
const PeerPutPath = "/peer/put"

// PeerPut is the replication push body.
type PeerPut struct {
	URL  string      `json:"url"`
	Page simweb.Page `json:"page"`
}

// HopsContain reports whether the comma-separated HeaderFrom hop list
// names node. The hop list replaced the single-flag loop guard: each
// forwarding node appends itself, so a replica-routing chain detects
// true cycles (self already in the list) without suppressing legitimate
// multi-hop reads.
func HopsContain(hops, node string) bool {
	if hops == "" || node == "" {
		return false
	}
	for _, h := range strings.Split(hops, ",") {
		if strings.TrimSpace(h) == node {
			return true
		}
	}
	return false
}

// LastHop returns the most recent node in the hop list — the immediate
// sender of a forwarded request ("" for an empty list).
func LastHop(hops string) string {
	if hops == "" {
		return ""
	}
	parts := strings.Split(hops, ",")
	return strings.TrimSpace(parts[len(parts)-1])
}

// AppendHop returns the hop list with node appended.
func AppendHop(hops, node string) string {
	if hops == "" {
		return node
	}
	if node == "" {
		return hops
	}
	return hops + "," + node
}

// PeerPage is the probe response body: the resident page plus how the
// answering node served it. simweb.Page marshals whole — title, body,
// anchors, size, version, last-modified — so the prober can run the full
// admission path on it, exactly as it would on an origin fetch.
type PeerPage struct {
	Page         simweb.Page `json:"page"`
	Source       string      `json:"source"`
	LatencyTicks int64       `json:"latency_ticks"`
	Stale        bool        `json:"stale"`
}

// maxPeerBody bounds how much of a peer response is read (defensive: a
// page payload is admission-bounded far below this).
const maxPeerBody = 16 << 20

// Proxy forwards the incoming request to owner and streams the answer
// back, under owner's breaker and the retry budget. It returns true when
// the response was written (the request is done); false means the caller
// must fall back to its local serve path — the breaker was open, every
// attempt died in transit, or the owner answered 5xx (its answer would
// have been an error; locally we may still hold a servable copy).
func (c *Cluster) Proxy(w http.ResponseWriter, r *http.Request, owner string) bool {
	if c == nil || !c.Enabled() {
		return false
	}
	pc := c.counter(owner)
	attempts := c.cfg.Retry.MaxAttempts
	// Forwarded requests carry the whole hop chain: upstream hops plus us.
	// The receiver serves locally if it finds itself in the list — a true
	// cycle — but legitimate multi-hop replica chains pass through.
	hops := AppendHop(r.Header.Get(HeaderFrom), c.Self())
	for attempt := 1; ; attempt++ {
		report, err := c.breakers.Allow(owner)
		if err != nil {
			pc.routedAround.Add(1)
			return false
		}
		resp, err := c.roundTrip(r.Context(), owner, r.URL.RequestURI(), hops)
		if err != nil {
			report(true)
			pc.proxyFailures.Add(1)
			if attempt >= attempts || r.Context().Err() != nil {
				return false
			}
			if !c.backoff(r.Context(), attempt) {
				return false
			}
			continue
		}
		if resp.StatusCode >= http.StatusInternalServerError {
			// The owner is up but failing; treat like a transport failure
			// so the breaker learns, and serve locally instead.
			io.Copy(io.Discard, io.LimitReader(resp.Body, maxPeerBody))
			resp.Body.Close()
			report(true)
			pc.proxyFailures.Add(1)
			return false
		}
		report(false)
		pc.proxied.Add(1)
		h := w.Header()
		for _, k := range []string{
			"Content-Type", "Content-Length", "Retry-After", "Location",
			HeaderNode, HeaderOwner, "X-CBFWW-Stale", "X-CBFWW-Source", "X-CBFWW-Version",
		} {
			if v := resp.Header.Get(k); v != "" {
				h.Set(k, v)
			}
		}
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, io.LimitReader(resp.Body, maxPeerBody))
		resp.Body.Close()
		return true
	}
}

// FetchResident asks every live peer — the replica set first, in owner
// order — for a resident copy of url. It implements warehouse.PeerSource:
// any replica's cold-miss path calls it before touching the origin, so an
// object admitted anywhere in the cluster is fetched from the origin
// exactly once. Probes are resident-only on the remote side; a peer that
// is Down or breaker-open is skipped outright.
func (c *Cluster) FetchResident(ctx context.Context, url string) (simweb.FetchResult, bool) {
	if c == nil {
		return simweb.FetchResult{}, false
	}
	st := c.state.Load()
	if st == nil || len(st.peers) == 0 {
		return simweb.FetchResult{}, false
	}
	// Replica-set members are the likely holders: probe them first (minus
	// self — we are the one missing), then the rest of the cluster.
	owners := st.ring.Owners(url, c.cfg.Replicas)
	order := make([]string, 0, len(st.peers))
	inOrder := make(map[string]bool, len(st.peers))
	for _, o := range owners {
		if o != st.self && !inOrder[o] {
			inOrder[o] = true
			order = append(order, o)
		}
	}
	for _, p := range st.peers {
		if !inOrder[p] {
			order = append(order, p)
		}
	}
	for _, peer := range order {
		pc := c.counter(peer)
		if pc.down.Load() {
			// The prober says this peer is gone; don't burn a timeout on it.
			pc.routedAround.Add(1)
			continue
		}
		report, err := c.breakers.Allow(peer)
		if err != nil {
			pc.routedAround.Add(1)
			continue
		}
		page, found, err := c.probe(ctx, peer, url)
		switch {
		case err != nil:
			report(true)
			pc.probeFailures.Add(1)
		case !found:
			report(false)
			pc.peerMisses.Add(1)
		default:
			report(false)
			pc.peerHits.Add(1)
			return simweb.FetchResult{
				Page:    page.Page,
				Latency: core.Duration(page.LatencyTicks),
			}, true
		}
		if ctx.Err() != nil {
			break
		}
	}
	return simweb.FetchResult{}, false
}

// probe performs one resident-only peer exchange. found=false with a nil
// error is the peer's honest 404: reachable, just not holding the URL.
func (c *Cluster) probe(ctx context.Context, peer, url string) (PeerPage, bool, error) {
	resp, err := c.roundTrip(ctx, peer, PeerFetchPath+"?url="+neturl.QueryEscape(url), c.Self())
	if err != nil {
		return PeerPage{}, false, err
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, maxPeerBody))
		resp.Body.Close()
	}()
	switch {
	case resp.StatusCode == http.StatusNotFound:
		return PeerPage{}, false, nil
	case resp.StatusCode != http.StatusOK:
		return PeerPage{}, false, fmt.Errorf("peers: probe %s: status %d", peer, resp.StatusCode)
	}
	var pp PeerPage
	if strings.HasPrefix(resp.Header.Get("Content-Type"), FrameContentType) {
		// Framed answer: meta line + raw body, streamed by the serving node.
		m, page, err := ReadFrame(resp.Body)
		if err != nil {
			return PeerPage{}, false, fmt.Errorf("peers: probe %s: %w", peer, err)
		}
		pp = PeerPage{Page: page, Source: m.Source, LatencyTicks: m.LatencyTicks, Stale: m.Stale}
	} else if err := json.NewDecoder(io.LimitReader(resp.Body, maxPeerBody)).Decode(&pp); err != nil {
		return PeerPage{}, false, fmt.Errorf("peers: probe %s: decode: %w", peer, err)
	}
	if pp.Page.URL == "" {
		pp.Page.URL = url
	}
	return pp, true, nil
}

// roundTrip issues one GET to addr carrying the hop list in the cluster
// identity header. The context caps it on top of the client timeout.
func (c *Cluster) roundTrip(ctx context.Context, addr, pathAndQuery, hops string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+addr+pathAndQuery, nil)
	if err != nil {
		return nil, fmt.Errorf("peers: %w", err)
	}
	req.Header.Set(HeaderFrom, hops)
	return c.client.Do(req)
}

// put pushes one admitted payload to peer's /peer/put as a frame: the
// meta line plus the raw body, chained readers with no concatenated
// buffer and no JSON escaping of megabyte bodies. Any non-2xx answer is a
// failure — the peer was reachable but refused, and the caller's
// park-and-retry path handles both the same way.
func (c *Cluster) put(ctx context.Context, peer, url string, page simweb.Page) error {
	if int64(len(page.Body)) > maxPeerBody {
		// The receiver's ReadFrame would reject the frame anyway; fail here
		// with a reason instead of an opaque 4xx from the far side.
		return fmt.Errorf("peers: put %s: body %d bytes exceeds peer cap %d", peer, len(page.Body), maxPeerBody)
	}
	meta := PageMeta(page)
	meta.URL = url
	line, err := EncodeFrameMeta(meta)
	if err != nil {
		return fmt.Errorf("peers: put %s: %w", peer, err)
	}
	body := io.MultiReader(bytes.NewReader(line), strings.NewReader(page.Body))
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+peer+PeerPutPath, body)
	if err != nil {
		return fmt.Errorf("peers: put %s: %w", peer, err)
	}
	req.ContentLength = int64(len(line)) + int64(len(page.Body))
	req.Header.Set("Content-Type", FrameContentType)
	req.Header.Set(HeaderFrom, c.Self())
	resp, err := c.client.Do(req)
	if err != nil {
		return fmt.Errorf("peers: put %s: %w", peer, err)
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		return fmt.Errorf("peers: put %s: status %d", peer, resp.StatusCode)
	}
	return nil
}

// backoff sleeps the (linear, small) retry delay, false when ctx ends
// first. Peer retries are a single quick second chance, not the origin
// wrapper's full exponential ladder — the fallback path is always local.
func (c *Cluster) backoff(ctx context.Context, attempt int) bool {
	d := c.cfg.Retry.BaseBackoff * time.Duration(attempt)
	if max := c.cfg.Retry.MaxBackoff; max > 0 && d > max {
		d = max
	}
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
