// Package peers is the warehouse's horizontal tier: a consistent-hash
// ring of cooperating daemons between one process's memory and the origin
// web. The single process stopped being the capacity bound when the
// warehouse was lock-striped; this package removes the next bound — the
// machine — by federating independent daemons over plain HTTP, the
// cache-daemon-federation shape of Voras & Žagar.
//
// Five mechanisms, composable and individually testable:
//
//   - the ring (ring.go): every URL hashes to an R-sized *replica set* of
//     distinct owner nodes (Owners; Owner is R=1) via virtual-node
//     consistent hashing, so membership changes move a bounded slice of
//     the key space (≈1/N on a join of N+1 nodes, at most one member of
//     any replica set) and every node computes the same owners with no
//     coordination;
//   - the cluster (cluster.go): static membership, per-peer circuit
//     breakers and retry budgets (the resilience layer extended
//     per-peer), and per-peer activity counters for /stats;
//   - the client (client.go): the HTTP peer protocol — full request
//     proxying with a hop-list loop guard, resident-only probes so a
//     replica's miss checks the cluster before the origin
//     (local → peer → origin), and replication pushes (/peer/put);
//   - the health view (health.go): an active prober that flips peers
//     Down after consecutive failed /healthz probes and Up on recovery,
//     layered on the breakers so routing skips dead peers even when no
//     traffic has recently taught a breaker;
//   - hinted handoff (handoff.go): admitted payloads are replicated
//     asynchronously to the rest of the replica set; pushes to a Down
//     peer park in a bounded per-peer queue and drain on recovery.
//
// A peer that is Down or breaker-open is routed around, never waited on:
// the gateway falls back to the next healthy replica or its local serve
// path (and the warehouse's own stale-serve degradation), so node loss
// degrades locality, not service.
package peers

import (
	"sort"
)

// DefaultVNodes is the virtual-node count per member: 128 points per node
// keeps key distribution within a few percent of uniform for small
// clusters while the ring stays tiny (N×128 points).
const DefaultVNodes = 128

// ringPoint is one virtual node: a position on the hash circle owned by a
// member.
type ringPoint struct {
	hash   uint64
	member int32 // index into Ring.members
}

// Ring is an immutable consistent-hash ring over member addresses.
// Construct with NewRing; look up owners with Owner. Immutability is the
// concurrency story: membership changes build a new ring and swap it.
type Ring struct {
	vnodes  int
	members []string
	points  []ringPoint
}

// NewRing builds a ring with the given virtual-node count (<= 0 uses
// DefaultVNodes) over the member addresses. Members are deduplicated and
// sorted first, so rings built from the same set in any order are
// identical — every node derives the same ownership with no coordination.
func NewRing(vnodes int, members []string) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	uniq := make([]string, 0, len(members))
	seen := make(map[string]bool, len(members))
	for _, m := range members {
		if m == "" || seen[m] {
			continue
		}
		seen[m] = true
		uniq = append(uniq, m)
	}
	sort.Strings(uniq)
	r := &Ring{
		vnodes:  vnodes,
		members: uniq,
		points:  make([]ringPoint, 0, vnodes*len(uniq)),
	}
	for mi, m := range uniq {
		h := hash64(m)
		for v := 0; v < vnodes; v++ {
			// Each virtual node rehashes the member hash with its index;
			// mix64 avalanches the combination so points scatter uniformly
			// even though member strings and indices are highly regular.
			r.points = append(r.points, ringPoint{
				hash:   mix64(h ^ mix64(uint64(v)+0x9e3779b97f4a7c15)),
				member: int32(mi),
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare) break on member order so the ring
		// stays deterministic regardless of construction order.
		return r.points[i].member < r.points[j].member
	})
	return r
}

// Owner returns the member owning key: the member of the first ring point
// clockwise from the key's hash. An empty ring owns nothing ("").
func (r *Ring) Owner(key string) string {
	if r == nil || len(r.points) == 0 {
		return ""
	}
	h := mix64(hash64(key))
	// First point with hash >= h, wrapping to points[0] past the end.
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.members[r.points[i].member]
}

// Owners returns the replica set for key: the first n distinct members
// clockwise from the key's hash, primary first. Owners(key, 1) is
// equivalent to {Owner(key)}. n is capped at the member count; an empty
// ring yields nil. The returned slice is freshly allocated.
func (r *Ring) Owners(key string, n int) []string {
	if r == nil || len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	h := mix64(hash64(key))
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if start == len(r.points) {
		start = 0
	}
	owners := make([]string, 0, n)
	seen := make(map[int32]bool, n)
	// Walk clockwise collecting distinct members; the walk terminates
	// because every member contributes at least one point.
	for i := 0; len(owners) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.member] {
			continue
		}
		seen[p.member] = true
		owners = append(owners, r.members[p.member])
	}
	return owners
}

// Members returns the member set, sorted. The slice is shared: callers
// must not mutate it.
func (r *Ring) Members() []string {
	if r == nil {
		return nil
	}
	return r.members
}

// VNodes returns the virtual-node count per member.
func (r *Ring) VNodes() int {
	if r == nil {
		return 0
	}
	return r.vnodes
}

// hash64 is FNV-1a over s. FNV alone clusters for regular inputs (URLs
// share long prefixes); callers push the result through mix64.
func hash64(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// mix64 is the 64-bit avalanche finalizer (splitmix64): every input bit
// affects every output bit, which is what keeps vnode points and key
// hashes uniform on the circle.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
