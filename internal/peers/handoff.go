package peers

import (
	"context"
	"sync"

	"cbfww/internal/simweb"
)

// handoff.go is the write side of replication: when a node admits a body
// it owns, it pushes the admitted payload to the other members of the
// URL's replica set via /peer/put — asynchronously, through a bounded
// queue, never blocking the client response. A push to a Down peer (or
// one that fails in transit) parks as a *hint* in that peer's bounded
// hinted-handoff queue; when the health prober sees the peer recover, the
// queue drains. Replication is best-effort by design: the authoritative
// copy is already admitted locally, and a lost hint costs at worst one
// extra peer probe on a future miss.

// repJob is one pending replication: push the admitted payload for URL to
// every address in targets.
type repJob struct {
	url     string
	page    simweb.Page
	targets []string
}

// hint is one parked replication awaiting a peer's recovery.
type hint struct {
	url  string
	page simweb.Page
}

// handoffQueue holds per-peer bounded hint queues. Oldest hints drop
// first when a queue is full; a re-parked URL replaces its stale payload
// in place so the queue holds at most one hint per URL.
type handoffQueue struct {
	mu     sync.Mutex
	limit  int
	byPeer map[string][]hint
}

func newHandoffQueue(limit int) *handoffQueue {
	return &handoffQueue{limit: limit, byPeer: make(map[string][]hint)}
}

// park queues a hint for peer, returning how many older hints were
// evicted to make room (0 or 1).
func (q *handoffQueue) park(peer string, h hint) (dropped int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	hints := q.byPeer[peer]
	for i := range hints {
		if hints[i].url == h.url {
			hints[i] = h // fresher payload for the same URL replaces in place
			return 0
		}
	}
	if len(hints) >= q.limit {
		copy(hints, hints[1:])
		hints = hints[:len(hints)-1]
		dropped = 1
	}
	q.byPeer[peer] = append(hints, h)
	return dropped
}

// take removes and returns up to n oldest hints for peer.
func (q *handoffQueue) take(peer string, n int) []hint {
	q.mu.Lock()
	defer q.mu.Unlock()
	hints := q.byPeer[peer]
	if len(hints) == 0 {
		return nil
	}
	if n > len(hints) {
		n = len(hints)
	}
	out := make([]hint, n)
	copy(out, hints[:n])
	rest := hints[n:]
	if len(rest) == 0 {
		delete(q.byPeer, peer)
	} else {
		q.byPeer[peer] = append(hints[:0], rest...)
	}
	return out
}

// len reports peer's queue depth.
func (q *handoffQueue) len(peer string) int {
	if q == nil {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.byPeer[peer])
}

// ReplicateAdmitted asks the cluster to push url's freshly admitted
// payload to the other members of its replica set. It never blocks: the
// job is queued for the background worker, and a full queue drops the job
// (counted in ReplicationDropped). It is the warehouse's Replicator hook;
// safe to call on a nil, unconfigured, or single-replica cluster (no-op).
func (c *Cluster) ReplicateAdmitted(url string, page simweb.Page) {
	if c == nil || c.cfg.Replicas < 2 {
		return
	}
	st := c.state.Load()
	if st == nil || len(st.peers) == 0 {
		return
	}
	owners := st.ring.Owners(url, c.cfg.Replicas)
	targets := make([]string, 0, len(owners)-1)
	for _, o := range owners {
		if o != st.self {
			targets = append(targets, o)
		}
	}
	if len(targets) == 0 {
		return
	}
	select {
	case c.repq <- repJob{url: url, page: page, targets: targets}:
	default:
		c.replicationDropped.Add(1)
	}
}

// replicateLoop is the background replication worker: one goroutine
// draining the queue, pushing each job to its targets. A Down target
// parks the hint immediately; a live target that fails the push (after
// the client's retry budget) reports to its breaker and parks the hint
// too — the handoff drain is the retry of last resort.
func (c *Cluster) replicateLoop(stop <-chan struct{}) {
	defer c.wg.Done()
	for {
		select {
		case <-stop:
			return
		case job := <-c.repq:
			for _, target := range job.targets {
				c.pushOrPark(target, job.url, job.page)
			}
		}
	}
}

// pushOrPark attempts one replication push, parking a hint on any
// failure.
func (c *Cluster) pushOrPark(target, url string, page simweb.Page) {
	pc := c.counter(target)
	if pc.down.Load() {
		pc.handoffParked.Add(1)
		pc.handoffDropped.Add(uint64(c.handoff.park(target, hint{url: url, page: page})))
		return
	}
	report, err := c.breakers.Allow(target)
	if err != nil {
		pc.replicateFails.Add(1)
		pc.handoffParked.Add(1)
		pc.handoffDropped.Add(uint64(c.handoff.park(target, hint{url: url, page: page})))
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.Timeout)
	err = c.put(ctx, target, url, page)
	cancel()
	if err != nil {
		report(true)
		pc.replicateFails.Add(1)
		pc.handoffParked.Add(1)
		pc.handoffDropped.Add(uint64(c.handoff.park(target, hint{url: url, page: page})))
		return
	}
	report(false)
	pc.replicated.Add(1)
}

// drainHandoff delivers peer's parked hints now that it is Up again,
// oldest first, stopping (and re-parking the remainder implicitly — they
// were never taken) on the first failure: a recovering node that fails a
// push is likely not done recovering.
func (c *Cluster) drainHandoff(peer string, pc *peerCounters) {
	for {
		batch := c.handoff.take(peer, 16)
		if len(batch) == 0 {
			return
		}
		for i, h := range batch {
			ctx, cancel := context.WithTimeout(context.Background(), c.cfg.Timeout)
			err := c.put(ctx, peer, h.url, h.page)
			cancel()
			if err != nil {
				// Re-park this and the rest of the batch, preserving order,
				// and give up until the next recovery signal.
				for _, back := range batch[i:] {
					pc.handoffDropped.Add(uint64(c.handoff.park(peer, back)))
				}
				return
			}
			pc.handoffDrained.Add(1)
		}
	}
}
