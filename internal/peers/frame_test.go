package peers

import (
	"bytes"
	"context"
	"io"
	"strings"
	"testing"

	"cbfww/internal/simweb"
)

// frameBytes renders meta + body exactly as the wire carries them.
func frameBytes(t *testing.T, m FrameMeta, body string) io.Reader {
	t.Helper()
	line, err := EncodeFrameMeta(m)
	if err != nil {
		t.Fatalf("EncodeFrameMeta: %v", err)
	}
	return io.MultiReader(bytes.NewReader(line), strings.NewReader(body))
}

// TestReadFrameRoundTrip: meta and body come back intact.
func TestReadFrameRoundTrip(t *testing.T) {
	page := simweb.Page{URL: "http://a.example/p", Title: "t", Body: "hello body", Version: 3}
	m := PageMeta(page)
	got, gotPage, err := ReadFrame(frameBytes(t, m, page.Body))
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	if got.URL != page.URL || got.BodyLen != int64(len(page.Body)) {
		t.Errorf("meta = %+v, want URL %q BodyLen %d", got, page.URL, len(page.Body))
	}
	if gotPage.Body != page.Body || gotPage.Title != page.Title || gotPage.Version != page.Version {
		t.Errorf("page = %+v, want %+v", gotPage, page)
	}
}

// TestReadFrameMaxBody: a body of exactly maxPeerBody parses fully — the
// meta line carries its own bound and no longer eats into the body
// budget (the regression failed such frames with an unexpected EOF).
func TestReadFrameMaxBody(t *testing.T) {
	body := strings.Repeat("x", maxPeerBody)
	m := FrameMeta{URL: "http://a.example/big", Version: 1, BodyLen: maxPeerBody}
	got, page, err := ReadFrame(frameBytes(t, m, body))
	if err != nil {
		t.Fatalf("ReadFrame at maxPeerBody: %v", err)
	}
	if got.BodyLen != maxPeerBody || int64(len(page.Body)) != maxPeerBody {
		t.Fatalf("BodyLen = %d, len(body) = %d, want %d", got.BodyLen, len(page.Body), maxPeerBody)
	}

	// One past the cap: rejected on validation, not an opaque short read.
	m.BodyLen = maxPeerBody + 1
	_, _, err = ReadFrame(frameBytes(t, m, body+"x"))
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("ReadFrame past cap = %v, want body-length rejection", err)
	}
}

// TestReadFrameMetaLineBounded: an endless "meta line" fails fast at the
// meta bound instead of buffering without limit.
func TestReadFrameMetaLineBounded(t *testing.T) {
	long := strings.Repeat("{", maxFrameMeta+1024) // no '\n' within the limit
	_, _, err := ReadFrame(strings.NewReader(long))
	if err == nil || !strings.Contains(err.Error(), "meta line") {
		t.Fatalf("ReadFrame over unbounded meta line = %v, want meta line error", err)
	}
}

// TestPutOversizedBody: the sender rejects a body past the receiver's cap
// with a clear error, before any bytes hit the wire.
func TestPutOversizedBody(t *testing.T) {
	c := newTestCluster(t, "127.0.0.1:1", "127.0.0.1:2")
	page := simweb.Page{URL: "http://a.example/huge", Body: strings.Repeat("x", maxPeerBody+1), Version: 1}
	err := c.put(context.Background(), "127.0.0.1:2", page.URL, page)
	if err == nil || !strings.Contains(err.Error(), "exceeds peer cap") {
		t.Fatalf("put with oversized body = %v, want peer-cap rejection", err)
	}
}
