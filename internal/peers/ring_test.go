package peers

import (
	"fmt"
	"testing"
)

// ringKeys generates a URL-shaped key population: the regular, shared-
// prefix strings the ring must spread uniformly despite their structure.
func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("http://site%d.example/articles/page-%d.html", i%17, i)
	}
	return keys
}

func ringMembers(n int) []string {
	members := make([]string, n)
	for i := range members {
		members[i] = fmt.Sprintf("10.0.0.%d:8642", i+1)
	}
	return members
}

// TestRingDistribution asserts per-member key share stays within ±15% of
// uniform at the default 128 vnodes, for every small-cluster size.
func TestRingDistribution(t *testing.T) {
	const numKeys = 20000
	keys := ringKeys(numKeys)
	for n := 2; n <= 8; n++ {
		t.Run(fmt.Sprintf("members=%d", n), func(t *testing.T) {
			members := ringMembers(n)
			r := NewRing(DefaultVNodes, members)
			counts := make(map[string]int, n)
			for _, k := range keys {
				counts[r.Owner(k)]++
			}
			uniform := float64(numKeys) / float64(n)
			for _, m := range members {
				share := float64(counts[m])
				if dev := (share - uniform) / uniform; dev < -0.15 || dev > 0.15 {
					t.Errorf("member %s owns %d keys (%.1f%% off uniform %.0f); want within ±15%%",
						m, counts[m], 100*dev, uniform)
				}
			}
		})
	}
}

// TestRingMovementOnJoin asserts the consistent-hash contract: growing an
// N-member ring to N+1 moves at most ~1/(N+1) of the keys (a small ε of
// slack for vnode granularity), and every moved key lands on the new
// member — keys never shuffle between survivors.
func TestRingMovementOnJoin(t *testing.T) {
	const numKeys = 20000
	keys := ringKeys(numKeys)
	for n := 2; n <= 8; n++ {
		t.Run(fmt.Sprintf("members=%d", n), func(t *testing.T) {
			members := ringMembers(n + 1)
			before := NewRing(DefaultVNodes, members[:n])
			after := NewRing(DefaultVNodes, members)
			joined := members[n]
			moved := 0
			for _, k := range keys {
				ob, oa := before.Owner(k), after.Owner(k)
				if ob == oa {
					continue
				}
				moved++
				if oa != joined {
					t.Fatalf("key %q moved %s -> %s, but the only new member is %s", k, ob, oa, joined)
				}
			}
			// Expected share is 1/(N+1); allow 1.5x for vnode granularity.
			limit := int(1.5 * float64(numKeys) / float64(n+1))
			if moved > limit {
				t.Errorf("join moved %d/%d keys, want <= %d (≈1/%d plus slack)", moved, numKeys, limit, n+1)
			}
			if moved == 0 {
				t.Error("join moved no keys: the new member owns nothing")
			}
		})
	}
}

// TestRingMovementOnLeave is the inverse contract: removing one member
// relocates only the keys it owned; every other key keeps its owner.
func TestRingMovementOnLeave(t *testing.T) {
	const numKeys = 20000
	keys := ringKeys(numKeys)
	for n := 3; n <= 8; n++ {
		t.Run(fmt.Sprintf("members=%d", n), func(t *testing.T) {
			members := ringMembers(n)
			before := NewRing(DefaultVNodes, members)
			leaver := members[n-1]
			after := NewRing(DefaultVNodes, members[:n-1])
			for _, k := range keys {
				ob, oa := before.Owner(k), after.Owner(k)
				if ob != leaver && ob != oa {
					t.Fatalf("key %q owned by survivor %s moved to %s when %s left", k, ob, oa, leaver)
				}
				if ob == leaver && oa == leaver {
					t.Fatalf("key %q still owned by departed member %s", k, leaver)
				}
			}
		})
	}
}

// TestRingDeterminism: same member set in any order, same ring.
func TestRingDeterminism(t *testing.T) {
	members := ringMembers(5)
	shuffled := []string{members[3], members[0], members[4], members[2], members[1], members[0]}
	a := NewRing(DefaultVNodes, members)
	b := NewRing(DefaultVNodes, shuffled) // reordered + duplicate
	for _, k := range ringKeys(500) {
		if oa, ob := a.Owner(k), b.Owner(k); oa != ob {
			t.Fatalf("owner(%q) differs by construction order: %s vs %s", k, oa, ob)
		}
	}
}

// TestRingOwnersDistinct: a replica set is n distinct members led by the
// primary owner, capped at the member count, for every requested size.
func TestRingOwnersDistinct(t *testing.T) {
	keys := ringKeys(2000)
	for n := 2; n <= 6; n++ {
		members := ringMembers(n)
		r := NewRing(DefaultVNodes, members)
		for want := 1; want <= n+2; want++ {
			expect := want
			if expect > n {
				expect = n
			}
			for _, k := range keys {
				owners := r.Owners(k, want)
				if len(owners) != expect {
					t.Fatalf("Owners(%q, %d) on %d members returned %d owners, want %d", k, want, n, len(owners), expect)
				}
				if owners[0] != r.Owner(k) {
					t.Fatalf("Owners(%q)[0] = %s, but Owner = %s", k, owners[0], r.Owner(k))
				}
				seen := make(map[string]bool, len(owners))
				for _, o := range owners {
					if seen[o] {
						t.Fatalf("Owners(%q, %d) repeats member %s: %v", k, want, o, owners)
					}
					seen[o] = true
				}
			}
		}
	}
}

// TestRingOwnersStableUnderVNodes: the replica-set *contract* (distinct
// members, primary-first, full size) holds at every vnode granularity, and
// for a fixed ring the walk is deterministic call to call.
func TestRingOwnersStableUnderVNodes(t *testing.T) {
	members := ringMembers(5)
	keys := ringKeys(1000)
	for _, vn := range []int{16, 64, 128, 256} {
		r := NewRing(vn, members)
		for _, k := range keys {
			owners := r.Owners(k, 2)
			if len(owners) != 2 || owners[0] == owners[1] {
				t.Fatalf("vnodes=%d Owners(%q,2) = %v, want 2 distinct", vn, k, owners)
			}
			if again := r.Owners(k, 2); owners[0] != again[0] || owners[1] != again[1] {
				t.Fatalf("vnodes=%d Owners(%q,2) not deterministic: %v vs %v", vn, k, owners, again)
			}
		}
	}
}

// TestRingOwnersMovementOnJoin extends the ring-quality bounds to replica
// sets: one join changes at most one member of any key's replica set (the
// joiner can displace one incumbent, never reshuffle survivors among
// themselves), and every new appearance is the joiner.
func TestRingOwnersMovementOnJoin(t *testing.T) {
	const numKeys = 20000
	keys := ringKeys(numKeys)
	for n := 3; n <= 8; n++ {
		t.Run(fmt.Sprintf("members=%d", n), func(t *testing.T) {
			members := ringMembers(n + 1)
			before := NewRing(DefaultVNodes, members[:n])
			after := NewRing(DefaultVNodes, members)
			joined := members[n]
			changedSets := 0
			for _, k := range keys {
				ob := before.Owners(k, 2)
				oa := after.Owners(k, 2)
				lost := diffSet(ob, oa)
				gained := diffSet(oa, ob)
				if len(lost) > 1 || len(gained) > 1 {
					t.Fatalf("key %q replica set changed %v -> %v: more than one member swapped", k, ob, oa)
				}
				for _, g := range gained {
					if g != joined {
						t.Fatalf("key %q replica set %v -> %v gained %s, but the only new member is %s", k, ob, oa, g, joined)
					}
				}
				if len(gained) > 0 {
					changedSets++
				}
			}
			// Each key has 2 replica slots, each with ~1/(N+1) chance of
			// moving to the joiner: bound changed sets by 2/(N+1) plus slack.
			limit := int(1.5 * 2 * float64(numKeys) / float64(n+1))
			if changedSets > limit {
				t.Errorf("join changed %d/%d replica sets, want <= %d", changedSets, numKeys, limit)
			}
		})
	}
}

// TestRingOwnersMovementOnLeave: removing one member changes at most one
// slot of any replica set, and survivors never swap among themselves.
func TestRingOwnersMovementOnLeave(t *testing.T) {
	const numKeys = 20000
	keys := ringKeys(numKeys)
	for n := 4; n <= 8; n++ {
		t.Run(fmt.Sprintf("members=%d", n), func(t *testing.T) {
			members := ringMembers(n)
			before := NewRing(DefaultVNodes, members)
			leaver := members[n-1]
			after := NewRing(DefaultVNodes, members[:n-1])
			for _, k := range keys {
				ob := before.Owners(k, 2)
				oa := after.Owners(k, 2)
				lost := diffSet(ob, oa)
				gained := diffSet(oa, ob)
				if len(lost) > 1 || len(gained) > 1 {
					t.Fatalf("key %q replica set changed %v -> %v on one leave", k, ob, oa)
				}
				for _, l := range lost {
					if l != leaver {
						t.Fatalf("key %q lost survivor %s from replica set %v -> %v when %s left", k, l, ob, oa, leaver)
					}
				}
				for _, o := range oa {
					if o == leaver {
						t.Fatalf("key %q replica set %v still contains departed %s", k, oa, leaver)
					}
				}
			}
		})
	}
}

// diffSet returns the members of a not present in b.
func diffSet(a, b []string) []string {
	inB := make(map[string]bool, len(b))
	for _, m := range b {
		inB[m] = true
	}
	var out []string
	for _, m := range a {
		if !inB[m] {
			out = append(out, m)
		}
	}
	return out
}

func TestRingEdges(t *testing.T) {
	var nilRing *Ring
	if got := nilRing.Owner("http://a.example/"); got != "" {
		t.Errorf("nil ring owner = %q, want empty", got)
	}
	empty := NewRing(0, nil)
	if got := empty.Owner("http://a.example/"); got != "" {
		t.Errorf("empty ring owner = %q, want empty", got)
	}
	if got := empty.VNodes(); got != DefaultVNodes {
		t.Errorf("vnodes <= 0 should default to %d, got %d", DefaultVNodes, got)
	}
	if got := nilRing.Owners("http://a.example/", 2); got != nil {
		t.Errorf("nil ring owners = %v, want nil", got)
	}
	if got := empty.Owners("http://a.example/", 2); got != nil {
		t.Errorf("empty ring owners = %v, want nil", got)
	}
	single := NewRing(4, []string{"only:1", "", "only:1"})
	if got := len(single.Members()); got != 1 {
		t.Fatalf("members after dedup/blank-filter = %d, want 1", got)
	}
	if got := single.Owners("http://a.example/", 3); len(got) != 1 || got[0] != "only:1" {
		t.Errorf("single-member Owners = %v, want [only:1]", got)
	}
	if got := single.Owners("http://a.example/", 0); got != nil {
		t.Errorf("Owners(k, 0) = %v, want nil", got)
	}
	for _, k := range ringKeys(50) {
		if got := single.Owner(k); got != "only:1" {
			t.Fatalf("single-member ring owner = %q, want only:1", got)
		}
	}
}
