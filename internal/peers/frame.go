package peers

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"cbfww/internal/core"
	"cbfww/internal/simweb"
)

// FrameContentType identifies the framed page encoding the peer endpoints
// exchange: one JSON metadata line (FrameMeta) terminated by '\n',
// followed by exactly BodyLen raw body bytes. It exists so multi-MB
// bodies cross the cluster without JSON string escaping and so the
// serving side can stream them store→socket. Receivers keep accepting
// plain application/json — the codec-era wire format — for mixed-version
// clusters.
const FrameContentType = "application/x-cbfww-page"

// FrameMeta is the JSON head of a framed page exchange: simweb.Page minus
// the body, plus the serving metadata a probe answer carries (zero on
// /peer/put pushes).
type FrameMeta struct {
	URL        string             `json:"url"`
	Title      string             `json:"title,omitempty"`
	Topic      int                `json:"topic,omitempty"`
	Anchors    []simweb.Anchor    `json:"anchors,omitempty"`
	Components []simweb.Component `json:"components,omitempty"`
	Size       core.Bytes         `json:"size"`
	Version    int                `json:"version"`
	LastMod    core.Time          `json:"last_mod"`
	BodyLen    int64              `json:"body_len"`

	Source       string `json:"source,omitempty"`
	LatencyTicks int64  `json:"latency_ticks,omitempty"`
	Stale        bool   `json:"stale,omitempty"`
}

// PageMeta builds a FrameMeta from a page (BodyLen from its resident
// body; streaming senders overwrite it with the stream's length).
func PageMeta(p simweb.Page) FrameMeta {
	return FrameMeta{
		URL:        p.URL,
		Title:      p.Title,
		Topic:      p.Topic,
		Anchors:    p.Anchors,
		Components: p.Components,
		Size:       p.Size,
		Version:    p.Version,
		LastMod:    p.LastMod,
		BodyLen:    int64(len(p.Body)),
	}
}

// Page reassembles the simweb.Page the frame describes around body.
func (m FrameMeta) Page(body string) simweb.Page {
	return simweb.Page{
		URL:        m.URL,
		Title:      m.Title,
		Body:       body,
		Topic:      m.Topic,
		Anchors:    m.Anchors,
		Components: m.Components,
		Size:       m.Size,
		Version:    m.Version,
		LastMod:    m.LastMod,
	}
}

// maxFrameMeta bounds the JSON meta line of a frame — generous for any
// real page's metadata, but it keeps a malicious peer from streaming an
// endless "line". The body is bounded separately, by BodyLen alone.
const maxFrameMeta = 1 << 20

// ReadFrame parses one framed page off r: the meta line, then exactly
// BodyLen body bytes (materialized — every current consumer re-admits the
// page, which needs the body in hand). The meta line and body carry
// separate bounds: the line is read through a maxFrameMeta limit, then
// the validated BodyLen (<= maxPeerBody) is the sole bound on the body —
// a maximal body does not lose the meta line's length off its budget.
func ReadFrame(r io.Reader) (FrameMeta, simweb.Page, error) {
	lr := &io.LimitedReader{R: r, N: maxFrameMeta}
	rd := bufio.NewReader(lr)
	line, err := rd.ReadBytes('\n')
	if err != nil {
		return FrameMeta{}, simweb.Page{}, fmt.Errorf("peers: frame: meta line: %w", err)
	}
	var m FrameMeta
	if err := json.Unmarshal(line, &m); err != nil {
		return FrameMeta{}, simweb.Page{}, fmt.Errorf("peers: frame: decode meta: %w", err)
	}
	if m.BodyLen < 0 || m.BodyLen > maxPeerBody {
		return FrameMeta{}, simweb.Page{}, fmt.Errorf("peers: frame: body length %d out of range", m.BodyLen)
	}
	// Re-arm the limit for the body; rd may already hold a buffered prefix
	// of it, which counts toward BodyLen.
	lr.N = m.BodyLen - int64(rd.Buffered())
	if lr.N < 0 {
		lr.N = 0
	}
	var sb strings.Builder
	sb.Grow(int(m.BodyLen))
	if _, err := io.CopyN(&sb, rd, m.BodyLen); err != nil {
		return FrameMeta{}, simweb.Page{}, fmt.Errorf("peers: frame: body: %w", err)
	}
	return m, m.Page(sb.String()), nil
}

// EncodeFrameMeta renders the meta line, newline terminator included.
func EncodeFrameMeta(m FrameMeta) ([]byte, error) {
	line, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("peers: frame: encode meta: %w", err)
	}
	return append(line, '\n'), nil
}
