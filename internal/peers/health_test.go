package peers

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cbfww/internal/resilience"
	"cbfww/internal/simweb"
)

// healthPeer is an httptest stand-in for a full peer: /healthz that can be
// scripted to fail, and /peer/put that records received payloads.
type healthPeer struct {
	srv      *httptest.Server
	sick     atomic.Bool // true: /healthz answers 500
	mu       sync.Mutex
	received []PeerPut
}

func newHealthPeer() *healthPeer {
	p := &healthPeer{}
	mux := http.NewServeMux()
	mux.HandleFunc("GET "+HealthzPath, func(w http.ResponseWriter, r *http.Request) {
		if p.sick.Load() {
			http.Error(w, "sick", http.StatusInternalServerError)
			return
		}
		w.Write([]byte(`{"status":"ok"}`))
	})
	mux.HandleFunc("POST "+PeerPutPath, func(w http.ResponseWriter, r *http.Request) {
		var pp PeerPut
		if strings.HasPrefix(r.Header.Get("Content-Type"), FrameContentType) {
			m, page, err := ReadFrame(r.Body)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			pp = PeerPut{URL: m.URL, Page: page}
		} else if err := json.NewDecoder(r.Body).Decode(&pp); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		p.mu.Lock()
		p.received = append(p.received, pp)
		p.mu.Unlock()
		w.Write([]byte(`{"admitted":true}`))
	})
	p.srv = httptest.NewServer(mux)
	return p
}

func (p *healthPeer) addr() string { return strings.TrimPrefix(p.srv.URL, "http://") }

func (p *healthPeer) got() []PeerPut {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]PeerPut, len(p.received))
	copy(out, p.received)
	return out
}

// waitFor polls cond for up to 5s.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestHopHelpers(t *testing.T) {
	if HopsContain("", "a:1") || HopsContain("a:1,b:2", "") {
		t.Error("empty hop list / node should never match")
	}
	hops := AppendHop("", "a:1")
	hops = AppendHop(hops, "b:2")
	if hops != "a:1,b:2" {
		t.Fatalf("hop chain = %q, want a:1,b:2", hops)
	}
	for _, n := range []string{"a:1", "b:2"} {
		if !HopsContain(hops, n) {
			t.Errorf("HopsContain(%q, %q) = false", hops, n)
		}
	}
	if HopsContain(hops, "c:3") {
		t.Error("HopsContain matched an absent node")
	}
	// Whitespace tolerance (proxies sometimes join headers with ", ").
	if !HopsContain("a:1, b:2", "b:2") {
		t.Error("HopsContain should trim spaces")
	}
}

func TestHandoffQueueBounds(t *testing.T) {
	q := newHandoffQueue(3)
	if q.len("p") != 0 {
		t.Fatal("fresh queue not empty")
	}
	for _, u := range []string{"u1", "u2", "u3"} {
		if d := q.park("p", hint{url: u}); d != 0 {
			t.Fatalf("park %s dropped %d from a non-full queue", u, d)
		}
	}
	// Same-URL re-park replaces in place, no growth, no drop.
	if d := q.park("p", hint{url: "u2", page: simweb.Page{Title: "fresh"}}); d != 0 || q.len("p") != 3 {
		t.Fatalf("re-park: dropped=%d len=%d, want 0 and 3", d, q.len("p"))
	}
	// Over the limit: oldest (u1) evicted.
	if d := q.park("p", hint{url: "u4"}); d != 1 {
		t.Fatalf("park into full queue dropped %d, want 1", d)
	}
	batch := q.take("p", 10)
	if len(batch) != 3 || batch[0].url != "u2" || batch[1].url != "u3" || batch[2].url != "u4" {
		t.Fatalf("take = %v, want [u2 u3 u4] oldest-first with u1 evicted", batch)
	}
	if batch[0].page.Title != "fresh" {
		t.Error("re-park did not replace the stale payload")
	}
	if q.len("p") != 0 {
		t.Error("take did not empty the queue")
	}
	// Partial take preserves the remainder's order.
	q.park("p", hint{url: "a"})
	q.park("p", hint{url: "b"})
	if got := q.take("p", 1); len(got) != 1 || got[0].url != "a" {
		t.Fatalf("partial take = %v, want [a]", got)
	}
	if got := q.take("p", 1); len(got) != 1 || got[0].url != "b" {
		t.Fatalf("second take = %v, want [b]", got)
	}
}

// TestProberMarksDownAndUp drives a peer sick and healthy via its own
// /healthz and watches the cluster's verdict follow: Down after the
// consecutive-failure threshold, Up (with counters) on the next success.
func TestProberMarksDownAndUp(t *testing.T) {
	peer := newHealthPeer()
	defer peer.srv.Close()

	c := NewCluster(Config{
		Timeout:        time.Second,
		ProbeInterval:  10 * time.Millisecond,
		ProbeThreshold: 2,
		Breaker:        resilience.BreakerConfig{Threshold: 100, Cooldown: time.Minute},
	})
	c.Configure("127.0.0.1:1", []string{peer.addr()})
	c.Start()
	defer c.Stop()

	waitFor(t, "first successful probe", func() bool {
		return c.Stats().Peers[0].HealthProbes > 0
	})
	if c.PeerDown(peer.addr()) || !c.Healthy(peer.addr()) {
		t.Fatal("live peer marked down")
	}

	peer.sick.Store(true)
	waitFor(t, "peer marked down", func() bool { return c.PeerDown(peer.addr()) })
	if c.Healthy(peer.addr()) {
		t.Error("down peer still reported healthy")
	}
	if d := c.Degraded(); len(d) != 1 || !strings.Contains(d[0], "down") {
		t.Errorf("degraded = %v, want one 'down' complaint", d)
	}

	peer.sick.Store(false)
	waitFor(t, "peer marked up", func() bool { return !c.PeerDown(peer.addr()) })
	st := c.Stats().Peers[0]
	if st.WentDown < 1 || st.WentUp < 1 || st.HealthFailures < 2 {
		t.Errorf("transition counters = down:%d up:%d fails:%d, want >=1/>=1/>=2",
			st.WentDown, st.WentUp, st.HealthFailures)
	}
	if st.Health != "up" {
		t.Errorf("health = %q, want up", st.Health)
	}
}

// TestReplicateAdmittedPushes: an admitted payload reaches the other
// replica through the background worker.
func TestReplicateAdmittedPushes(t *testing.T) {
	peer := newHealthPeer()
	defer peer.srv.Close()

	c := NewCluster(Config{
		Timeout:       time.Second,
		Replicas:      2,
		ProbeInterval: time.Hour, // prober idle; this test drives health by hand
		Breaker:       resilience.BreakerConfig{Threshold: 100, Cooldown: time.Minute},
	})
	c.Configure("127.0.0.1:1", []string{peer.addr()})
	c.Start()
	defer c.Stop()

	u := "http://a.example/replicated.html"
	c.ReplicateAdmitted(u, simweb.Page{URL: u, Title: "copy"})
	waitFor(t, "replica push", func() bool { return len(peer.got()) == 1 })
	if got := peer.got()[0]; got.URL != u || got.Page.Title != "copy" {
		t.Fatalf("replica received %+v", got)
	}
	if st := c.Stats().Peers[0]; st.Replicated != 1 {
		t.Errorf("replicated counter = %d, want 1", st.Replicated)
	}
}

// TestHandoffParksAndDrains: pushes to a Down peer park as hints; flipping
// the peer Up drains them in order.
func TestHandoffParksAndDrains(t *testing.T) {
	peer := newHealthPeer()
	defer peer.srv.Close()

	c := NewCluster(Config{
		Timeout:       time.Second,
		Replicas:      2,
		ProbeInterval: time.Hour,
		HandoffLimit:  2,
		Breaker:       resilience.BreakerConfig{Threshold: 100, Cooldown: time.Minute},
	})
	c.Configure("127.0.0.1:1", []string{peer.addr()})
	c.Start()
	defer c.Stop()

	c.SetPeerDown(peer.addr(), true)
	for _, u := range []string{"http://a.example/1", "http://a.example/2", "http://a.example/3"} {
		c.ReplicateAdmitted(u, simweb.Page{URL: u})
	}
	// Limit 2: three parks evict the oldest hint.
	waitFor(t, "hints parked", func() bool {
		st := c.Stats().Peers[0]
		return st.HandoffParked == 3 && st.HandoffDropped == 1 && st.HandoffQueued == 2
	})
	if len(peer.got()) != 0 {
		t.Fatal("down peer received pushes")
	}

	c.SetPeerDown(peer.addr(), false) // recovery drains synchronously
	st := c.Stats().Peers[0]
	if st.HandoffQueued != 0 || st.HandoffDrained != 2 {
		t.Fatalf("after drain: queued=%d drained=%d, want 0 and 2", st.HandoffQueued, st.HandoffDrained)
	}
	got := peer.got()
	if len(got) != 2 || got[0].URL != "http://a.example/2" || got[1].URL != "http://a.example/3" {
		t.Fatalf("drained payloads = %v, want the two newest in order", got)
	}
}

// TestFetchResidentSkipsDownPeer: the health verdict routes probes around
// a Down peer without burning a timeout on it.
func TestFetchResidentSkipsDownPeer(t *testing.T) {
	pages := make(map[string]simweb.Page)
	for i := 0; i < 64; i++ {
		u := fmt.Sprintf("http://a.example/p%d.html", i)
		pages[u] = simweb.Page{URL: u, Title: "hot", Body: "payload"}
	}
	holder := newFakePeer(pages)
	defer holder.srv.Close()
	deadAddr := "127.0.0.1:1"

	c := newTestCluster(t, "127.0.0.1:2", holder.addr(), deadAddr)
	c.SetPeerDown(deadAddr, true)
	// Pick a URL whose primary owner is the dead peer, so the probe order
	// genuinely starts at the peer the health view must skip.
	var u string
	for cand := range pages {
		if owners, _ := c.Owners(cand); owners[0] == deadAddr {
			u = cand
			break
		}
	}
	if u == "" {
		t.Fatal("no candidate URL primarily owned by the dead peer (64 tries)")
	}
	res, ok := c.FetchResident(context.Background(), u)
	if !ok || res.Page.Body != "payload" {
		t.Fatalf("FetchResident = (%+v, %v), want the holder's copy", res, ok)
	}
	for _, p := range c.Stats().Peers {
		if p.Addr == deadAddr {
			if p.ProbeFailures != 0 {
				t.Errorf("down peer was probed %d times, want routed around instead", p.ProbeFailures)
			}
			if p.RoutedAround == 0 {
				t.Error("down peer never counted routed-around")
			}
		}
	}
}
