package peers

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"cbfww/internal/core"
	"cbfww/internal/resilience"
	"cbfww/internal/simweb"
)

// fakePeer is an httptest stand-in for a remote gateway's /peer/fetch:
// it holds a resident set and counts probes.
type fakePeer struct {
	srv    *httptest.Server
	pages  map[string]simweb.Page
	probes atomic.Int64
}

func newFakePeer(pages map[string]simweb.Page) *fakePeer {
	p := &fakePeer{pages: pages}
	mux := http.NewServeMux()
	mux.HandleFunc("GET "+PeerFetchPath, func(w http.ResponseWriter, r *http.Request) {
		p.probes.Add(1)
		u := r.URL.Query().Get("url")
		page, ok := p.pages[u]
		if !ok {
			http.NotFound(w, r)
			return
		}
		json.NewEncoder(w).Encode(PeerPage{Page: page, Source: "memory", LatencyTicks: 3})
	})
	p.srv = httptest.NewServer(mux)
	return p
}

func (p *fakePeer) addr() string { return strings.TrimPrefix(p.srv.URL, "http://") }

func newTestCluster(t *testing.T, self string, peerAddrs ...string) *Cluster {
	t.Helper()
	c := NewCluster(Config{
		Timeout: time.Second,
		Breaker: resilience.BreakerConfig{Threshold: 2, Cooldown: time.Minute},
	})
	c.Configure(self, append(peerAddrs, self))
	return c
}

func TestClusterUnconfigured(t *testing.T) {
	var nilCluster *Cluster
	if nilCluster.Enabled() {
		t.Error("nil cluster reports enabled")
	}
	if _, isSelf := nilCluster.Owner("http://a.example/"); !isSelf {
		t.Error("nil cluster should self-own everything")
	}
	st := nilCluster.Stats()
	if st.Enabled || st.Peers == nil || len(st.Peers) != 0 {
		t.Errorf("nil cluster stats = %+v, want disabled with empty non-nil peers", st)
	}

	c := NewCluster(Config{})
	if c.Enabled() {
		t.Error("unconfigured cluster reports enabled")
	}
	if owner, isSelf := c.Owner("http://a.example/"); !isSelf || owner != "" {
		t.Errorf("unconfigured Owner = (%q, %v), want self-owned", owner, isSelf)
	}
	if _, ok := c.FetchResident(context.Background(), "http://a.example/"); ok {
		t.Error("unconfigured FetchResident reported a hit")
	}
}

func TestClusterConfigureSingleNode(t *testing.T) {
	c := NewCluster(Config{})
	c.Configure("127.0.0.1:1", []string{"127.0.0.1:1"})
	if !c.Enabled() {
		t.Fatal("configured cluster not enabled")
	}
	if len(c.Peers()) != 0 {
		t.Fatalf("single-node peers = %v, want none", c.Peers())
	}
	st := c.Stats()
	if !st.Enabled || st.Members != 1 || len(st.Peers) != 0 || st.Peers == nil {
		t.Errorf("single-node stats = %+v, want enabled, 1 member, empty non-nil peers", st)
	}
	if owner, isSelf := c.Owner("http://a.example/x"); !isSelf || owner != "127.0.0.1:1" {
		t.Errorf("Owner = (%q, %v), want self", owner, isSelf)
	}
}

func TestFetchResidentHit(t *testing.T) {
	u := "http://a.example/hot.html"
	holder := newFakePeer(map[string]simweb.Page{u: {URL: u, Title: "hot", Body: "payload", Size: 2 * core.KB}})
	defer holder.srv.Close()
	empty := newFakePeer(nil)
	defer empty.srv.Close()

	c := newTestCluster(t, "127.0.0.1:1", holder.addr(), empty.addr())
	res, ok := c.FetchResident(context.Background(), u)
	if !ok {
		t.Fatal("FetchResident missed a resident peer copy")
	}
	if res.Page.Body != "payload" || res.Latency != 3 {
		t.Errorf("result = %+v, want the peer's page with latency 3", res)
	}
	var hits, misses uint64
	for _, p := range c.Stats().Peers {
		hits += p.PeerHits
		misses += p.PeerMisses
	}
	if hits != 1 {
		t.Errorf("peer hits = %d, want 1", hits)
	}
	// Owner-first ordering may or may not have probed the empty peer; a
	// hit must stop the sweep, so at most one miss.
	if misses > 1 {
		t.Errorf("peer misses = %d, want <= 1", misses)
	}
}

func TestFetchResidentMissAndFailure(t *testing.T) {
	empty := newFakePeer(nil)
	defer empty.srv.Close()
	dead := newFakePeer(nil)
	dead.srv.Close() // connection refused

	c := newTestCluster(t, "127.0.0.1:1", empty.addr(), dead.addr())
	if _, ok := c.FetchResident(context.Background(), "http://a.example/cold.html"); ok {
		t.Fatal("FetchResident hit on a cluster with no copies")
	}
	var misses, failures uint64
	for _, p := range c.Stats().Peers {
		misses += p.PeerMisses
		failures += p.ProbeFailures
	}
	if misses != 1 || failures != 1 {
		t.Errorf("misses=%d failures=%d, want 1 and 1", misses, failures)
	}
}

func TestBreakerSkipsDeadPeer(t *testing.T) {
	dead := newFakePeer(nil)
	dead.srv.Close()
	addr := dead.addr()

	c := newTestCluster(t, "127.0.0.1:1", addr) // threshold 2
	ctx := context.Background()
	c.FetchResident(ctx, "http://a.example/1")
	c.FetchResident(ctx, "http://a.example/2")
	if got := c.BreakerState(addr); got != "open" {
		t.Fatalf("breaker after %d failures = %q, want open", 2, got)
	}
	c.FetchResident(ctx, "http://a.example/3")
	var failures, around uint64
	for _, p := range c.Stats().Peers {
		failures += p.ProbeFailures
		around += p.RoutedAround
	}
	if failures != 2 {
		t.Errorf("probe failures = %d, want 2 (third probe skipped by breaker)", failures)
	}
	if around != 1 {
		t.Errorf("routed around = %d, want 1", around)
	}
}

func TestProxySuccess(t *testing.T) {
	owner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(HeaderFrom) == "" {
			t.Error("proxied request missing From header")
		}
		w.Header().Set(HeaderNode, "owner-node")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write([]byte(`{"ok":true}`))
	}))
	defer owner.Close()
	ownerAddr := strings.TrimPrefix(owner.URL, "http://")

	c := newTestCluster(t, "127.0.0.1:1", ownerAddr)
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet, "/fetch?url="+url.QueryEscape("http://a.example/p"), nil)
	if !c.Proxy(rec, req, ownerAddr) {
		t.Fatal("Proxy returned false against a healthy owner")
	}
	if rec.Code != http.StatusOK || rec.Header().Get(HeaderNode) != "owner-node" {
		t.Errorf("proxied response: code=%d node=%q", rec.Code, rec.Header().Get(HeaderNode))
	}
	if got := c.Stats().Peers[0].Proxied; got != 1 {
		t.Errorf("proxied counter = %d, want 1", got)
	}
}

func TestProxyFallsBackOn5xxAndDeath(t *testing.T) {
	failing := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer failing.Close()
	failAddr := strings.TrimPrefix(failing.URL, "http://")

	dead := newFakePeer(nil)
	dead.srv.Close()

	c := newTestCluster(t, "127.0.0.1:1", failAddr, dead.addr())

	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet, "/fetch?url=x", nil)
	if c.Proxy(rec, req, failAddr) {
		t.Fatal("Proxy reported success against a 5xx owner")
	}
	if rec.Code != http.StatusOK || rec.Body.Len() != 0 {
		t.Errorf("5xx fallback wrote to the client: code=%d body=%q (must stay pristine for local serve)",
			rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	if c.Proxy(rec, httptest.NewRequest(http.MethodGet, "/fetch?url=x", nil), dead.addr()) {
		t.Fatal("Proxy reported success against a dead owner")
	}

	// Drive the dead peer's breaker open (threshold 2; the retry loop
	// already reported failures), then confirm open-breaker refusal.
	for i := 0; i < 3; i++ {
		c.Proxy(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/fetch?url=x", nil), dead.addr())
	}
	if got := c.BreakerState(dead.addr()); got != "open" {
		t.Fatalf("dead peer breaker = %q, want open", got)
	}
	var around uint64
	for _, p := range c.Stats().Peers {
		around += p.RoutedAround
	}
	if around == 0 {
		t.Error("open breaker never counted a routed-around request")
	}
}

func TestProxyNilAndDisabled(t *testing.T) {
	var nilCluster *Cluster
	rec := httptest.NewRecorder()
	if nilCluster.Proxy(rec, httptest.NewRequest(http.MethodGet, "/fetch", nil), "x:1") {
		t.Error("nil cluster proxied")
	}
	if NewCluster(Config{}).Proxy(rec, httptest.NewRequest(http.MethodGet, "/fetch", nil), "x:1") {
		t.Error("unconfigured cluster proxied")
	}
}

func TestCountersSurviveReconfigure(t *testing.T) {
	c := newTestCluster(t, "a:1", "b:2")
	c.CountRedirect("b:2")
	c.Configure("a:1", []string{"a:1", "b:2", "c:3"})
	var redirects uint64
	for _, p := range c.Stats().Peers {
		if p.Addr == "b:2" {
			redirects = p.Redirects
		}
	}
	if redirects != 1 {
		t.Errorf("redirect counter after reconfigure = %d, want 1", redirects)
	}
	if got := len(c.Stats().Peers); got != 2 {
		t.Errorf("peers after growing to 3 members = %d, want 2", got)
	}
}
