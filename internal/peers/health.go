package peers

import (
	"context"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// health.go is the cluster's active health view: a background prober that
// periodically GETs every peer's /healthz and keeps a per-peer Up/Down
// verdict, layered on (not replacing) the per-peer circuit breakers. The
// breakers learn from real traffic and react within one request; the
// prober notices a dead peer even when no traffic flows, flips it Down
// after a consecutive-failure threshold, and flips it Up — draining its
// hinted-handoff queue — on the first successful probe. Routing consults
// both: a peer is Healthy only when the prober says Up AND its breaker is
// not open.

// HealthzPath is the endpoint the prober hits. Every gateway mounts it;
// it always answers 200 (a degraded node is still a live node — see the
// gateway's handler), so any response is proof of life.
const HealthzPath = "/healthz"

// Start launches the health prober and the replication worker. It is
// idempotent; pair with Stop. Call after Configure — an unconfigured
// cluster's prober has nobody to probe (it idles harmlessly).
func (c *Cluster) Start() {
	if c == nil {
		return
	}
	c.lifeMu.Lock()
	defer c.lifeMu.Unlock()
	if c.stop != nil {
		return
	}
	c.stop = make(chan struct{})
	c.wg.Add(2)
	go c.probeLoop(c.stop)
	go c.replicateLoop(c.stop)
}

// Stop halts the prober and replication worker and waits for them.
// Idempotent; a stopped cluster can Start again.
func (c *Cluster) Stop() {
	if c == nil {
		return
	}
	c.lifeMu.Lock()
	defer c.lifeMu.Unlock()
	if c.stop == nil {
		return
	}
	close(c.stop)
	c.wg.Wait()
	c.stop = nil
}

// probeLoop drives probe rounds on a jittered interval: each round waits
// interval/2 + uniform[0, interval), so a fleet of nodes started together
// does not synchronize its probes.
func (c *Cluster) probeLoop(stop <-chan struct{}) {
	defer c.wg.Done()
	rnd := rand.New(rand.NewSource(time.Now().UnixNano()))
	interval := c.cfg.ProbeInterval
	for {
		d := interval/2 + time.Duration(rnd.Float64()*float64(interval))
		t := time.NewTimer(d)
		select {
		case <-stop:
			t.Stop()
			return
		case <-t.C:
		}
		c.probeRound(stop)
	}
}

// probeRound probes every current peer once, concurrently (a dead peer
// costs a full timeout; serial rounds would let one corpse starve the
// others' freshness).
func (c *Cluster) probeRound(stop <-chan struct{}) {
	st := c.state.Load()
	if st == nil || len(st.peers) == 0 {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.Timeout)
	defer cancel()
	go func() {
		// Stop aborts in-flight probes; the deferred cancel reaps this
		// watcher when the round ends normally.
		select {
		case <-stop:
			cancel()
		case <-ctx.Done():
		}
	}()
	var wg sync.WaitGroup
	for _, p := range st.peers {
		wg.Add(1)
		go func(peer string) {
			defer wg.Done()
			c.probeOne(ctx, peer)
		}(p)
	}
	wg.Wait()
}

// probeOne sends one health probe and records the outcome. Any HTTP
// response is proof of life — /healthz reports degradation in its body,
// not its status code — so only transport errors count as failures.
func (c *Cluster) probeOne(ctx context.Context, peer string) {
	pc := c.counter(peer)
	pc.healthProbes.Add(1)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+peer+HealthzPath, nil)
	if err != nil {
		c.recordProbe(peer, pc, false)
		return
	}
	req.Header.Set(HeaderFrom, c.Self())
	resp, err := c.client.Do(req)
	if err != nil {
		c.recordProbe(peer, pc, false)
		return
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	c.recordProbe(peer, pc, resp.StatusCode < http.StatusInternalServerError)
}

// recordProbe applies one probe outcome to the peer's health state:
// success resets the failure streak and (if Down) flips the peer Up,
// draining its handoff queue; failures accumulate until the threshold
// flips it Down.
func (c *Cluster) recordProbe(peer string, pc *peerCounters, ok bool) {
	if ok {
		pc.consecFails.Store(0)
		if pc.down.CompareAndSwap(true, false) {
			pc.wentUp.Add(1)
			// Drain synchronously in the prober goroutine: recovery is rare
			// and the drain is bounded by the handoff limit.
			c.drainHandoff(peer, pc)
		}
		return
	}
	pc.healthFailures.Add(1)
	if int(pc.consecFails.Add(1)) >= c.cfg.ProbeThreshold {
		if pc.down.CompareAndSwap(false, true) {
			pc.wentDown.Add(1)
		}
	}
}

// PeerDown reports the prober's verdict for addr (false = Up, including
// unknown peers — optimism until evidence).
func (c *Cluster) PeerDown(addr string) bool {
	if c == nil || addr == "" {
		return false
	}
	return c.counter(addr).down.Load()
}

// SetPeerDown overrides a peer's health verdict through the same
// transition path the prober uses (Up flips drain handoff). Exposed for
// tests and operational tooling; the next probe round re-evaluates.
func (c *Cluster) SetPeerDown(addr string, down bool) {
	if c == nil || addr == "" {
		return
	}
	pc := c.counter(addr)
	if down {
		pc.consecFails.Store(int32(c.cfg.ProbeThreshold))
		if pc.down.CompareAndSwap(false, true) {
			pc.wentDown.Add(1)
		}
		return
	}
	c.recordProbe(addr, pc, true)
}

// Healthy reports whether addr is worth routing to right now: the prober
// says Up and the breaker is not open. The two layers catch different
// failures — the breaker reacts to real traffic within one request, the
// prober notices silence — and routing trusts whichever is pessimistic.
func (c *Cluster) Healthy(addr string) bool {
	if c == nil || addr == "" {
		return false
	}
	if c.counter(addr).down.Load() {
		return false
	}
	return c.breakers.State(addr) != "open"
}

// Degraded lists current peer-health complaints — "peer <addr> down",
// "peer <addr> breaker open" — for /healthz's degraded report. Empty
// means all peers look fine from here.
func (c *Cluster) Degraded() []string {
	if c == nil {
		return nil
	}
	st := c.state.Load()
	if st == nil {
		return nil
	}
	var out []string
	for _, p := range st.peers {
		if c.counter(p).down.Load() {
			out = append(out, "peer "+p+" down")
		} else if c.breakers.State(p) == "open" {
			out = append(out, "peer "+p+" breaker open")
		}
	}
	return out
}
