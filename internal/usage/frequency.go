package usage

import (
	"container/list"
	"math"

	"cbfww/internal/core"
)

// SlidingWindow is the exact frequency estimator of §4.2: it counts
// references to each object within a movable interval of fixed length.
// Precise, but it must "keep track of detailed usage information for all
// data about the current window" — O(references in window) memory. The
// estimator is not internally synchronized; the Tracker owns the lock.
type SlidingWindow struct {
	size   core.Duration
	events *list.List // of windowEvent, oldest at front
	counts map[core.ObjectID]int
}

type windowEvent struct {
	id core.ObjectID
	at core.Time
}

// NewSlidingWindow returns a window of the given length in ticks. A
// non-positive size panics: a zero-length window counts nothing and is
// always a configuration bug.
func NewSlidingWindow(size core.Duration) *SlidingWindow {
	if size <= 0 {
		panic("usage: sliding window size must be positive")
	}
	return &SlidingWindow{
		size:   size,
		events: list.New(),
		counts: make(map[core.ObjectID]int),
	}
}

// Size returns the window length.
func (w *SlidingWindow) Size() core.Duration { return w.size }

// Record notes a reference to id at time t. Times must be non-decreasing.
func (w *SlidingWindow) Record(id core.ObjectID, t core.Time) {
	w.advance(t)
	w.events.PushBack(windowEvent{id: id, at: t})
	w.counts[id]++
}

// Frequency returns the number of references to id in (now-size, now].
func (w *SlidingWindow) Frequency(id core.ObjectID, now core.Time) int {
	w.advance(now)
	return w.counts[id]
}

// EventCount returns the total number of references currently inside the
// window — the memory cost the paper warns about.
func (w *SlidingWindow) EventCount() int { return w.events.Len() }

// advance expires events older than now-size.
func (w *SlidingWindow) advance(now core.Time) {
	cutoff := now.Add(-core.Duration(w.size))
	for e := w.events.Front(); e != nil; {
		ev := e.Value.(windowEvent)
		if ev.at.After(cutoff) {
			break
		}
		next := e.Next()
		w.events.Remove(e)
		if c := w.counts[ev.id] - 1; c > 0 {
			w.counts[ev.id] = c
		} else {
			delete(w.counts, ev.id)
		}
		e = next
	}
}

// AgingEstimator implements the paper's λ-aging frequency estimate:
//
//	f_{i,j} = λ·f* + (1-λ)·f_{i,j-1}
//
// where f* is the reference count since the last computation and f_{i,j-1}
// the previous estimate. "This method removes the overhead for keeping
// usage information": memory is O(objects), independent of reference rate.
//
// The implementation is lazy: instead of recomputing every object at every
// epoch boundary, each object stores the epoch of its last update and the
// decay (1-λ)^(elapsed epochs) is applied on access. EpochLength converts
// tick time to epochs.
type AgingEstimator struct {
	lambda float64
	// EpochLength is the number of ticks per aging epoch (default 1).
	EpochLength core.Duration
	entries     map[core.ObjectID]*agingEntry
}

type agingEntry struct {
	estimate float64 // f_{i,j-1}: estimate as of epoch
	pending  float64 // f*: references in the current (not yet closed) epoch
	epoch    int64   // epoch of the last update
}

// NewAgingEstimator returns a λ-aging estimator. Lambda must be in (0, 1];
// λ=1 degenerates to "count within the current epoch only".
func NewAgingEstimator(lambda float64) *AgingEstimator {
	if lambda <= 0 || lambda > 1 {
		panic("usage: lambda must be in (0, 1]")
	}
	return &AgingEstimator{
		lambda:      lambda,
		EpochLength: 1,
		entries:     make(map[core.ObjectID]*agingEntry),
	}
}

// Lambda returns the configured decay parameter.
func (a *AgingEstimator) Lambda() float64 { return a.lambda }

func (a *AgingEstimator) epochOf(t core.Time) int64 {
	return int64(t) / int64(a.EpochLength)
}

// settle folds completed epochs into the estimate.
func (a *AgingEstimator) settle(e *agingEntry, epoch int64) {
	if epoch <= e.epoch {
		return
	}
	// Close the epoch the pending count belongs to.
	e.estimate = a.lambda*e.pending + (1-a.lambda)*e.estimate
	e.pending = 0
	// Decay across the empty epochs in between: each contributes f* = 0.
	if gap := epoch - e.epoch - 1; gap > 0 {
		e.estimate *= math.Pow(1-a.lambda, float64(gap))
	}
	e.epoch = epoch
}

// Record notes a reference to id at time t.
func (a *AgingEstimator) Record(id core.ObjectID, t core.Time) {
	e := a.entries[id]
	if e == nil {
		e = &agingEntry{epoch: a.epochOf(t)}
		a.entries[id] = e
	}
	a.settle(e, a.epochOf(t))
	e.pending++
}

// Frequency returns the aged frequency estimate of id as of time now. The
// current epoch's pending references are included at full weight, since
// the paper's f* term covers "frequency since last computation".
func (a *AgingEstimator) Frequency(id core.ObjectID, now core.Time) float64 {
	e, ok := a.entries[id]
	if !ok {
		return 0
	}
	epoch := a.epochOf(now)
	if epoch <= e.epoch {
		return a.lambda*e.pending + (1-a.lambda)*e.estimate
	}
	// Compute without mutating so Frequency can run under a read lock.
	// This mirrors settle() followed by the in-epoch formula with an empty
	// pending count: close the entry's epoch, decay across the empty gap,
	// then blend with the (empty) current epoch.
	est := a.lambda*e.pending + (1-a.lambda)*e.estimate
	if gap := epoch - e.epoch - 1; gap > 0 {
		est *= math.Pow(1-a.lambda, float64(gap))
	}
	return (1 - a.lambda) * est
}

// Objects returns the number of tracked objects — the estimator's memory
// footprint in entries.
func (a *AgingEstimator) Objects() int { return len(a.entries) }
