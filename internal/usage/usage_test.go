package usage

import (
	"sync"
	"testing"
	"testing/quick"

	"cbfww/internal/core"
)

func TestHistoryTable2Attributes(t *testing.T) {
	h := NewHistory(1)
	if h.FirstRef() != core.TimeNever {
		t.Error("fresh history has a firstref")
	}
	if h.LastKRef(1) != core.TimeNever {
		t.Error("fresh history has a lastkref")
	}
	h.Touch(10)
	h.Touch(20)
	h.Touch(30)
	if h.FirstRef() != 10 {
		t.Errorf("FirstRef = %v, want 10", h.FirstRef())
	}
	if h.Count() != 3 {
		t.Errorf("Count = %d", h.Count())
	}
	// lastkref: k=1 is most recent.
	if got := h.LastKRef(1); got != 30 {
		t.Errorf("LastKRef(1) = %v, want 30", got)
	}
	if got := h.LastKRef(3); got != 10 {
		t.Errorf("LastKRef(3) = %v, want 10", got)
	}
	// Paper: fewer than k references => -infinity.
	if got := h.LastKRef(4); got != core.TimeNever {
		t.Errorf("LastKRef(4) = %v, want never", got)
	}
	// Modifications do not change firstref.
	h.Modify(40)
	if h.FirstRef() != 10 {
		t.Error("Modify changed firstref")
	}
	if got := h.LastKMod(1); got != 40 {
		t.Errorf("LastKMod(1) = %v", got)
	}
	if got := h.LastKMod(2); got != core.TimeNever {
		t.Errorf("LastKMod(2) = %v, want never", got)
	}
}

func TestHistoryDepthRing(t *testing.T) {
	h := NewHistory(1)
	for i := 1; i <= HistoryDepth+5; i++ {
		h.Touch(core.Time(i * 10))
	}
	if got := h.LastKRef(1); got != core.Time((HistoryDepth+5)*10) {
		t.Errorf("LastKRef(1) = %v", got)
	}
	if got := h.LastKRef(HistoryDepth); got != 60 {
		t.Errorf("LastKRef(max) = %v, want 60", got)
	}
	if h.Count() != uint64(HistoryDepth+5) {
		t.Errorf("Count = %d", h.Count())
	}
}

func TestLastKRefPanicsOutOfRange(t *testing.T) {
	h := NewHistory(1)
	for _, k := range []int{0, -1, HistoryDepth + 1} {
		k := k
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("LastKRef(%d) did not panic", k)
				}
			}()
			h.LastKRef(k)
		}()
	}
}

func TestSharedClamped(t *testing.T) {
	h := NewHistory(1)
	h.SetShared(3)
	if h.Shared() != 3 {
		t.Errorf("Shared = %d", h.Shared())
	}
	h.SetShared(-5)
	if h.Shared() != 0 {
		t.Errorf("negative shared not clamped: %d", h.Shared())
	}
}

func TestSlidingWindowExpiry(t *testing.T) {
	w := NewSlidingWindow(100)
	w.Record(1, 10)
	w.Record(1, 50)
	w.Record(2, 60)
	if got := w.Frequency(1, 60); got != 2 {
		t.Errorf("Frequency(1, t=60) = %d, want 2", got)
	}
	// At t=111 the event at t=10 has fallen out ((11,111] window).
	if got := w.Frequency(1, 111); got != 1 {
		t.Errorf("Frequency(1, t=111) = %d, want 1", got)
	}
	// At t=151 the event at exactly now-size=51... event t=50 expires when
	// t-100 >= 50, i.e. now >= 150.
	if got := w.Frequency(1, 150); got != 0 {
		t.Errorf("Frequency(1, t=150) = %d, want 0", got)
	}
	if got := w.Frequency(2, 150); got != 1 {
		t.Errorf("Frequency(2, t=150) = %d, want 1", got)
	}
	if w.EventCount() != 1 {
		t.Errorf("EventCount = %d, want 1", w.EventCount())
	}
}

func TestSlidingWindowPanicsOnZeroSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewSlidingWindow(0) did not panic")
		}
	}()
	NewSlidingWindow(0)
}

func TestAgingEstimatorBasic(t *testing.T) {
	a := NewAgingEstimator(0.5)
	// 4 refs in epoch 0.
	for i := 0; i < 4; i++ {
		a.Record(1, 0)
	}
	// Within the epoch: λ·pending = 0.5·4 = 2.
	if got := a.Frequency(1, 0); got != 2 {
		t.Errorf("Frequency in epoch 0 = %v, want 2", got)
	}
	// Epoch 1, no refs: estimate = λ·0 + (1-λ)·(λ·4) ... settle folds epoch
	// 0 first: estimate=2. Then current epoch pending=0: 0.5·0+0.5·2 = 1.
	if got := a.Frequency(1, 1); got != 1 {
		t.Errorf("Frequency in epoch 1 = %v, want 1", got)
	}
	// Decay over many empty epochs approaches 0.
	if got := a.Frequency(1, 50); got > 1e-9 {
		t.Errorf("Frequency after long gap = %v, want ~0", got)
	}
	if got := a.Frequency(99, 0); got != 0 {
		t.Errorf("unknown object frequency = %v", got)
	}
}

func TestAgingEstimatorRecencyBias(t *testing.T) {
	a := NewAgingEstimator(0.3)
	// Object 1: heavy use long ago. Object 2: light use recently.
	for i := 0; i < 20; i++ {
		a.Record(1, 0)
	}
	a.Record(2, 98)
	a.Record(2, 99)
	a.Record(2, 100)
	if f1, f2 := a.Frequency(1, 100), a.Frequency(2, 100); f1 >= f2 {
		t.Errorf("aging should favor recent use: old=%v recent=%v", f1, f2)
	}
}

func TestAgingFrequencyDoesNotMutate(t *testing.T) {
	a := NewAgingEstimator(0.5)
	a.Record(1, 0)
	f1 := a.Frequency(1, 10)
	f2 := a.Frequency(1, 10)
	if f1 != f2 {
		t.Errorf("Frequency not repeatable: %v then %v", f1, f2)
	}
	// A later Record must observe the same timeline.
	a.Record(1, 10)
	if got := a.Frequency(1, 10); got <= f1 {
		t.Errorf("new reference did not raise estimate: %v <= %v", got, f1)
	}
}

func TestAgingEstimatorPanicsOnBadLambda(t *testing.T) {
	for _, l := range []float64{0, -0.5, 1.5} {
		l := l
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewAgingEstimator(%v) did not panic", l)
				}
			}()
			NewAgingEstimator(l)
		}()
	}
}

// Property: λ-aging estimate is always non-negative and bounded by the
// total number of references.
func TestAgingBoundsProperty(t *testing.T) {
	f := func(gaps []uint8, lambda uint8) bool {
		l := (float64(lambda%99) + 1) / 100 // (0, 1)
		a := NewAgingEstimator(l)
		now := core.Time(0)
		for _, g := range gaps {
			now = now.Add(core.Duration(g % 16))
			a.Record(1, now)
		}
		est := a.Frequency(1, now)
		return est >= 0 && est <= float64(len(gaps))+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: sliding-window frequency equals a brute-force recount.
func TestSlidingWindowMatchesBruteForce(t *testing.T) {
	f := func(gaps []uint8, ids []uint8) bool {
		if len(gaps) != len(ids) {
			n := len(gaps)
			if len(ids) < n {
				n = len(ids)
			}
			gaps, ids = gaps[:n], ids[:n]
		}
		const size = 50
		w := NewSlidingWindow(size)
		type ev struct {
			id core.ObjectID
			at core.Time
		}
		var all []ev
		now := core.Time(0)
		for i := range gaps {
			now = now.Add(core.Duration(gaps[i] % 20))
			id := core.ObjectID(ids[i]%5 + 1)
			w.Record(id, now)
			all = append(all, ev{id, now})
		}
		for id := core.ObjectID(1); id <= 5; id++ {
			want := 0
			for _, e := range all {
				if e.id == id && e.at.After(now.Add(-size)) {
					want++
				}
			}
			if got := w.Frequency(id, now); got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTrackerEndToEnd(t *testing.T) {
	clock := core.NewSimClock(0)
	tr := NewTracker(clock, 100, 0.5)
	tr.Touch(1)
	clock.Advance(10)
	tr.Touch(1)
	tr.Touch(2)
	tr.Modify(2)
	tr.SetShared(1, 2)

	s, ok := tr.Get(1)
	if !ok {
		t.Fatal("Get(1) missing")
	}
	if s.Count != 2 || s.FirstRef != 0 || s.LastRef != 10 || s.Shared != 2 {
		t.Errorf("snapshot = %+v", s)
	}
	s2, _ := tr.Get(2)
	if s2.LastMod != 10 {
		t.Errorf("LastMod = %v", s2.LastMod)
	}
	if got := tr.WindowFrequency(1); got != 2 {
		t.Errorf("WindowFrequency = %d", got)
	}
	if got := tr.AgedFrequency(1); got <= 0 {
		t.Errorf("AgedFrequency = %v", got)
	}
	if _, ok := tr.Get(99); ok {
		t.Error("Get(99) found something")
	}
	if tr.Len() != 2 {
		t.Errorf("Len = %d", tr.Len())
	}
	if at, ok := tr.LastKRef(1, 2); !ok || at != 0 {
		t.Errorf("LastKRef(1,2) = %v, %v", at, ok)
	}
	n := 0
	tr.ForEach(func(Snapshot) { n++ })
	if n != 2 {
		t.Errorf("ForEach visited %d", n)
	}
}

// Modify on an untouched object must create history without a firstref.
func TestTrackerModifyBeforeTouch(t *testing.T) {
	clock := core.NewSimClock(5)
	tr := NewTracker(clock, 10, 0.5)
	tr.Modify(7)
	s, ok := tr.Get(7)
	if !ok {
		t.Fatal("no history after Modify")
	}
	if s.FirstRef != core.TimeNever {
		t.Errorf("FirstRef = %v, want never", s.FirstRef)
	}
	if s.LastMod != 5 {
		t.Errorf("LastMod = %v", s.LastMod)
	}
}

func TestTrackerConcurrent(t *testing.T) {
	clock := core.NewSimClock(0)
	tr := NewTracker(clock, 1000, 0.5)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := core.ObjectID(i%10 + 1)
				tr.Touch(id)
				tr.Get(id)
				tr.AgedFrequency(id)
				tr.WindowFrequency(id)
			}
		}(g)
	}
	wg.Wait()
	if tr.Len() != 10 {
		t.Errorf("Len = %d, want 10", tr.Len())
	}
	total := uint64(0)
	tr.ForEach(func(s Snapshot) { total += s.Count })
	if total != 8*200 {
		t.Errorf("total touches = %d, want 1600", total)
	}
}
