// Package usage maintains the per-object history of past use that every
// CBFWW priority decision feeds on. Table 2 of the paper defines the
// attribute set:
//
//	frequency f_i   — frequency of references
//	firstref  t_i   — time of first reference
//	lastkref  t_i^k — time of the last k'th reference
//	lastkmod  u_i^k — time of the last k'th modification
//	shared    r     — number of containers sharing the object
//
// Two frequency estimators are provided, matching §4.2: an exact sliding
// window (precise, O(window) memory) and λ-aging (constant memory,
// exponentially weighted). E-X1 in EXPERIMENTS.md benchmarks the trade-off.
package usage

import (
	"fmt"
	"sync"

	"cbfww/internal/core"
)

// History records the usage attributes of a single object. The zero value
// is not ready for use; call NewHistory. History methods are not
// individually synchronized; the Tracker serializes access.
type History struct {
	id core.ObjectID

	// firstref is the time of the first reference; modifications never
	// change it (paper: "Modifications do not change the t_i").
	firstref core.Time

	// refs is a ring of the last K reference times, newest first. refs[k-1]
	// is the time of the last k-th reference.
	refs []core.Time

	// mods is a ring of the last K modification times, newest first.
	mods []core.Time

	// count is the total number of references ever.
	count uint64

	// shared is the number of containers (physical/logical pages) that
	// include this object.
	shared int
}

// HistoryDepth is the number of recent reference/modification times kept
// (the maximum k for lastkref/lastkmod).
const HistoryDepth = 8

// NewHistory returns a fresh history for id with no recorded events.
func NewHistory(id core.ObjectID) *History {
	return &History{
		id:       id,
		firstref: core.TimeNever,
	}
}

// ID returns the object this history belongs to.
func (h *History) ID() core.ObjectID { return h.id }

// Touch records a reference at time t.
func (h *History) Touch(t core.Time) {
	if h.firstref == core.TimeNever {
		h.firstref = t
	}
	h.count++
	h.refs = pushRecent(h.refs, t)
}

// Modify records a modification (content update) at time t.
func (h *History) Modify(t core.Time) {
	h.mods = pushRecent(h.mods, t)
}

// pushRecent prepends t, keeping at most HistoryDepth entries.
func pushRecent(ring []core.Time, t core.Time) []core.Time {
	if len(ring) < HistoryDepth {
		ring = append(ring, 0)
	}
	copy(ring[1:], ring)
	ring[0] = t
	return ring
}

// Count returns the total number of references ever recorded.
func (h *History) Count() uint64 { return h.count }

// FirstRef returns t_i, the time of the first reference, or TimeNever.
func (h *History) FirstRef() core.Time { return h.firstref }

// LastKRef returns t_i^k, the time of the last k-th reference. Per the
// paper, if the object has not been referenced at least k times the result
// is -infinity (TimeNever). k = 1 is the LRU "time since last reference"
// attribute. k must be in [1, HistoryDepth].
func (h *History) LastKRef(k int) core.Time {
	if k < 1 || k > HistoryDepth {
		panic(fmt.Sprintf("usage: LastKRef(%d) out of range [1,%d]", k, HistoryDepth))
	}
	if k > len(h.refs) {
		return core.TimeNever
	}
	return h.refs[k-1]
}

// LastKMod returns u_i^k, the time of the last k-th modification, or
// TimeNever when fewer than k modifications have occurred.
func (h *History) LastKMod(k int) core.Time {
	if k < 1 || k > HistoryDepth {
		panic(fmt.Sprintf("usage: LastKMod(%d) out of range [1,%d]", k, HistoryDepth))
	}
	if k > len(h.mods) {
		return core.TimeNever
	}
	return h.mods[k-1]
}

// Shared returns r, the number of containers sharing this object.
func (h *History) Shared() int { return h.shared }

// SetShared records the current container count. Negative counts are
// clamped to zero.
func (h *History) SetShared(r int) {
	if r < 0 {
		r = 0
	}
	h.shared = r
}

// Snapshot is an immutable copy of the Table 2 attributes, safe to hand out
// of the Tracker's lock.
type Snapshot struct {
	ID       core.ObjectID
	Count    uint64
	FirstRef core.Time
	LastRef  core.Time // LastKRef(1)
	LastMod  core.Time // LastKMod(1)
	Shared   int
}

// Snapshot copies the current attribute values.
func (h *History) Snapshot() Snapshot {
	return Snapshot{
		ID:       h.id,
		Count:    h.count,
		FirstRef: h.firstref,
		LastRef:  h.LastKRef(1),
		LastMod:  h.LastKMod(1),
		Shared:   h.shared,
	}
}

// Tracker owns the histories of all objects and the frequency estimators.
// It is safe for concurrent use.
type Tracker struct {
	mu        sync.RWMutex
	clock     core.Clock
	histories map[core.ObjectID]*History
	window    *SlidingWindow
	aging     *AgingEstimator
}

// NewTracker returns a Tracker using the given clock, an exact sliding
// window of windowSize ticks, and λ-aging with the given lambda.
func NewTracker(clock core.Clock, windowSize core.Duration, lambda float64) *Tracker {
	return &Tracker{
		clock:     clock,
		histories: make(map[core.ObjectID]*History),
		window:    NewSlidingWindow(windowSize),
		aging:     NewAgingEstimator(lambda),
	}
}

// SetAgingEpoch sets the λ-aging epoch length in ticks (default 1). Call
// before recording references; a warehouse at one tick per second
// typically ages hourly.
func (t *Tracker) SetAgingEpoch(d core.Duration) {
	if d <= 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.aging.EpochLength = d
}

// Touch records a reference to id at the clock's current time and returns
// the updated snapshot.
func (t *Tracker) Touch(id core.ObjectID) Snapshot {
	now := t.clock.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	h := t.histories[id]
	if h == nil {
		h = NewHistory(id)
		t.histories[id] = h
	}
	h.Touch(now)
	t.window.Record(id, now)
	t.aging.Record(id, now)
	return h.Snapshot()
}

// Modify records a content modification to id at the current time.
func (t *Tracker) Modify(id core.ObjectID) {
	now := t.clock.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	h := t.histories[id]
	if h == nil {
		h = NewHistory(id)
		t.histories[id] = h
	}
	h.Modify(now)
}

// SetShared records the container count of id.
func (t *Tracker) SetShared(id core.ObjectID, r int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	h := t.histories[id]
	if h == nil {
		h = NewHistory(id)
		t.histories[id] = h
	}
	h.SetShared(r)
}

// Get returns the snapshot for id and whether any history exists.
func (t *Tracker) Get(id core.ObjectID) (Snapshot, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	h, ok := t.histories[id]
	if !ok {
		return Snapshot{}, false
	}
	return h.Snapshot(), true
}

// LastKRef exposes the full-depth attribute for query processing; ok is
// false when the object has no history at all.
func (t *Tracker) LastKRef(id core.ObjectID, k int) (core.Time, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	h, ok := t.histories[id]
	if !ok {
		return core.TimeNever, false
	}
	return h.LastKRef(k), true
}

// WindowFrequency returns the exact reference count of id within the
// sliding window ending now.
func (t *Tracker) WindowFrequency(id core.ObjectID) int {
	now := t.clock.Now()
	t.mu.Lock() // Advance prunes, so a write lock is needed.
	defer t.mu.Unlock()
	return t.window.Frequency(id, now)
}

// AgedFrequency returns the λ-aged frequency estimate of id as of now.
func (t *Tracker) AgedFrequency(id core.ObjectID) float64 {
	now := t.clock.Now()
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.aging.Frequency(id, now)
}

// Len returns the number of objects with recorded history.
func (t *Tracker) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.histories)
}

// ForEach calls fn with a snapshot of every tracked object. Iteration
// order is unspecified.
func (t *Tracker) ForEach(fn func(Snapshot)) {
	t.mu.RLock()
	snaps := make([]Snapshot, 0, len(t.histories))
	for _, h := range t.histories {
		snaps = append(snaps, h.Snapshot())
	}
	t.mu.RUnlock()
	for _, s := range snaps {
		fn(s)
	}
}
