package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"cbfww/internal/core"
)

// Load reads a spec file, picking the decoder by extension: .toml (or
// anything else) for the TOML subset, .json for JSON of the same shape.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if strings.EqualFold(filepath.Ext(path), ".json") {
		return ParseJSON(data)
	}
	return ParseTOML(data)
}

// ParseTOML decodes a TOML spec, strictly: unknown keys are errors.
func ParseTOML(data []byte) (*Spec, error) {
	raw, err := parseTOML(string(data))
	if err != nil {
		return nil, err
	}
	return decodeSpec(raw)
}

// ParseJSON decodes a JSON spec with the same key layout as the TOML
// form, equally strictly.
func ParseJSON(data []byte) (*Spec, error) {
	var raw map[string]any
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.UseNumber()
	if err := dec.Decode(&raw); err != nil {
		return nil, fmt.Errorf("scenario: %w: %v", core.ErrInvalid, err)
	}
	return decodeSpec(raw)
}

// decodeSpec maps the parsed key tree onto a Spec, defaulting absent keys
// from DefaultSpec and rejecting unknown ones — the validated-config
// idiom: a typo'd axis name must fail loudly, not silently run a smaller
// matrix.
func decodeSpec(raw map[string]any) (*Spec, error) {
	s := DefaultSpec()
	d := &decoder{}

	d.section(raw, "", func(top map[string]any) {
		d.str(top, "", "name", &s.Name)
		d.section(top, "run", func(m map[string]any) {
			d.i64(m, "run", "seed", &s.Run.Seed)
			d.intv(m, "run", "sites", &s.Run.Sites)
			d.intv(m, "run", "pages_per_site", &s.Run.PagesPerSite)
			d.intv(m, "run", "sessions", &s.Run.Sessions)
			d.intv(m, "run", "users", &s.Run.Users)
			d.dur(m, "run", "length", &s.Run.Length)
			d.dur(m, "run", "maintain_every", &s.Run.MaintainEvery)
			d.dur(m, "run", "origin_latency", &s.Run.OriginLatency)
		})
		d.section(top, "workload", func(m map[string]any) {
			d.floats(m, "workload", "zipf", &s.Workload.Zipf)
			d.floats(m, "workload", "one_timer_mass", &s.Workload.OneTimerMass)
			d.floats(m, "workload", "churn", &s.Workload.Churn)
			d.strs(m, "workload", "burst", &s.Workload.Burst)
		})
		d.section(top, "topology", func(m map[string]any) {
			d.ints(m, "topology", "shards", &s.Topology.Shards)
			d.bytesList(m, "topology", "mem", &s.Topology.Mem)
			d.bytesList(m, "topology", "disk", &s.Topology.Disk)
			d.strs(m, "topology", "backend", &s.Topology.Backend)
			d.strs(m, "topology", "capacity", &s.Topology.Capacity)
		})
		d.section(top, "policy", func(m map[string]any) {
			d.strs(m, "policy", "policies", &s.Policies)
		})
		d.section(top, "tolerances", func(m map[string]any) {
			keys := make([]string, 0, len(m))
			for k := range m {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			tols := map[string]float64{}
			for _, k := range keys {
				var v float64
				d.f64(m, "tolerances", k, &v)
				tols[k] = v
			}
			if len(tols) > 0 {
				s.Tolerances = tols
			}
		})
	})
	if d.err != nil {
		return nil, d.err
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// decoder is a strict tree walker: every consumed key is crossed off, and
// leftover keys in a section are reported as unknown. The first error
// wins; later calls are no-ops.
type decoder struct {
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("scenario: %w: %s", core.ErrInvalid, fmt.Sprintf(format, args...))
	}
}

// section consumes m[name] as a table, calls fill on it, then reports any
// keys fill did not consume. name "" means m itself is the table (the
// top level).
func (d *decoder) section(m map[string]any, name string, fill func(map[string]any)) {
	if d.err != nil {
		return
	}
	tab := m
	if name != "" {
		v, ok := m[name]
		if !ok {
			return
		}
		delete(m, name)
		tab, ok = v.(map[string]any)
		if !ok {
			d.fail("%s must be a table/object", name)
			return
		}
	}
	fill(tab)
	if d.err != nil {
		return
	}
	var leftovers []string
	for k := range tab {
		leftovers = append(leftovers, k)
	}
	if len(leftovers) > 0 {
		sort.Strings(leftovers)
		prefix := name
		if prefix != "" {
			prefix += "."
		}
		d.fail("unknown key %s%s", prefix, leftovers[0])
	}
}

func (d *decoder) take(m map[string]any, key string) (any, bool) {
	if d.err != nil {
		return nil, false
	}
	v, ok := m[key]
	if ok {
		delete(m, key)
	}
	return v, ok
}

func qual(section, key string) string {
	if section == "" {
		return key
	}
	return section + "." + key
}

func (d *decoder) str(m map[string]any, section, key string, out *string) {
	v, ok := d.take(m, key)
	if !ok {
		return
	}
	s, ok := v.(string)
	if !ok {
		d.fail("%s must be a string", qual(section, key))
		return
	}
	*out = s
}

func (d *decoder) f64(m map[string]any, section, key string, out *float64) {
	v, ok := d.take(m, key)
	if !ok {
		return
	}
	f, ok := toFloat(v)
	if !ok {
		d.fail("%s must be a number", qual(section, key))
		return
	}
	*out = f
}

func (d *decoder) i64(m map[string]any, section, key string, out *int64) {
	v, ok := d.take(m, key)
	if !ok {
		return
	}
	n, ok := toInt(v)
	if !ok {
		d.fail("%s must be an integer", qual(section, key))
		return
	}
	*out = n
}

func (d *decoder) intv(m map[string]any, section, key string, out *int) {
	v, ok := d.take(m, key)
	if !ok {
		return
	}
	n, good := toInt(v)
	if !good {
		d.fail("%s must be an integer", qual(section, key))
		return
	}
	*out = int(n)
}

func (d *decoder) dur(m map[string]any, section, key string, out *core.Duration) {
	v, ok := d.take(m, key)
	if !ok {
		return
	}
	n, good := toInt(v)
	if !good {
		d.fail("%s must be an integer tick count", qual(section, key))
		return
	}
	*out = core.Duration(n)
}

func (d *decoder) floats(m map[string]any, section, key string, out *[]float64) {
	v, ok := d.take(m, key)
	if !ok {
		return
	}
	arr, ok := v.([]any)
	if !ok {
		d.fail("%s must be an array of numbers", qual(section, key))
		return
	}
	vals := make([]float64, 0, len(arr))
	for _, it := range arr {
		f, ok := toFloat(it)
		if !ok {
			d.fail("%s must contain only numbers", qual(section, key))
			return
		}
		vals = append(vals, f)
	}
	*out = vals
}

func (d *decoder) ints(m map[string]any, section, key string, out *[]int) {
	v, ok := d.take(m, key)
	if !ok {
		return
	}
	arr, ok := v.([]any)
	if !ok {
		d.fail("%s must be an array of integers", qual(section, key))
		return
	}
	vals := make([]int, 0, len(arr))
	for _, it := range arr {
		n, ok := toInt(it)
		if !ok {
			d.fail("%s must contain only integers", qual(section, key))
			return
		}
		vals = append(vals, int(n))
	}
	*out = vals
}

func (d *decoder) strs(m map[string]any, section, key string, out *[]string) {
	v, ok := d.take(m, key)
	if !ok {
		return
	}
	arr, ok := v.([]any)
	if !ok {
		d.fail("%s must be an array of strings", qual(section, key))
		return
	}
	vals := make([]string, 0, len(arr))
	for _, it := range arr {
		s, ok := it.(string)
		if !ok {
			d.fail("%s must contain only strings", qual(section, key))
			return
		}
		vals = append(vals, s)
	}
	*out = vals
}

func (d *decoder) bytesList(m map[string]any, section, key string, out *[]core.Bytes) {
	v, ok := d.take(m, key)
	if !ok {
		return
	}
	arr, ok := v.([]any)
	if !ok {
		d.fail("%s must be an array of sizes (\"2MB\") or byte counts", qual(section, key))
		return
	}
	vals := make([]core.Bytes, 0, len(arr))
	for _, it := range arr {
		switch x := it.(type) {
		case string:
			b, err := ParseBytes(x)
			if err != nil {
				d.fail("%s: %v", qual(section, key), err)
				return
			}
			vals = append(vals, b)
		default:
			n, ok := toInt(it)
			if !ok || n <= 0 {
				d.fail("%s must contain sizes (\"2MB\") or positive byte counts", qual(section, key))
				return
			}
			vals = append(vals, core.Bytes(n))
		}
	}
	*out = vals
}

func toFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case float64:
		return x, true
	case int64:
		return float64(x), true
	case json.Number:
		f, err := x.Float64()
		return f, err == nil
	}
	return 0, false
}

func toInt(v any) (int64, bool) {
	switch x := v.(type) {
	case int64:
		return x, true
	case float64:
		if x == float64(int64(x)) {
			return int64(x), true
		}
	case json.Number:
		n, err := x.Int64()
		return n, err == nil
	}
	return 0, false
}

// ParseBytes parses a human capacity: "512KB", "2MB", "1.5GB", or a bare
// integer byte count.
func ParseBytes(s string) (core.Bytes, error) {
	t := strings.TrimSpace(strings.ToUpper(s))
	unit := core.Bytes(1)
	switch {
	case strings.HasSuffix(t, "GB"):
		unit, t = core.GB, t[:len(t)-2]
	case strings.HasSuffix(t, "MB"):
		unit, t = core.MB, t[:len(t)-2]
	case strings.HasSuffix(t, "KB"):
		unit, t = core.KB, t[:len(t)-2]
	case strings.HasSuffix(t, "B"):
		t = t[:len(t)-1]
	}
	f, err := strconv.ParseFloat(strings.TrimSpace(t), 64)
	if err != nil || f <= 0 {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return core.Bytes(f * float64(unit)), nil
}
