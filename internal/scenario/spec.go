// Package scenario is the declarative benchmark matrix of the regression
// rig: a validated spec describes a workload × topology × policy
// cross-product, a runner expands it into deterministic seeded runs over
// the internal/workload generators (warehouse replays for the paper's
// admission policies, trace simulations for the bounded baselines), and
// the results are emitted both as machine-readable JSON (BENCH_<name>.json)
// and as a human table. A check pass compares a fresh run against a
// checked-in baseline under per-metric tolerances, so CI fails loudly —
// naming the cell and metric — when a change regresses a number the
// repo's tables cite.
package scenario

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"cbfww/internal/core"
)

// Spec is one scenario matrix: the axes plus the shared run shape.
type Spec struct {
	// Name keys the output files (BENCH_<name>.json) and table titles.
	Name string
	// Run is the world shape shared by every cell.
	Run RunConfig
	// Workload, Topology and Policies are the matrix axes.
	Workload WorkloadAxes
	Topology TopologyAxes
	Policies []string
	// Tolerances maps a gated metric name (or "default") to the relative
	// regression slack the check pass allows, in (0, 1].
	Tolerances map[string]float64
}

// RunConfig shapes the generated world every cell replays.
type RunConfig struct {
	// Seed drives all randomness: same seed, same spec, same bytes out.
	Seed int64
	// Sites × PagesPerSite size the synthetic web.
	Sites        int
	PagesPerSite int
	// Sessions and Length bound the trace.
	Sessions int
	Length   core.Duration
	// Users is the client population.
	Users int
	// MaintainEvery is the warehouse maintenance cadence in ticks.
	MaintainEvery core.Duration
	// OriginLatency is the miss cost, in ticks, charged by the bounded
	// cache simulations (the warehouse pays its simulated per-site origin
	// latencies instead).
	OriginLatency core.Duration
}

// WorkloadAxes are the workload dimensions; every listed value multiplies
// the matrix.
type WorkloadAxes struct {
	// Zipf is the popularity skew s.
	Zipf []float64
	// OneTimerMass in [0, 1] biases walks toward one-off tail pages: the
	// runner maps it to the session follow-link probability (deep walks
	// touch many pages exactly once — the §1 one-timer mass).
	OneTimerMass []float64
	// Churn is expected page updates per tick.
	Churn []float64
	// Burst entries are "none" or "<count>x<intensity>" (e.g. "2x0.8"):
	// count evenly spaced hot-spot surges at the given traffic fraction.
	Burst []string
}

// TopologyAxes are the deployment dimensions.
type TopologyAxes struct {
	// Shards is the warehouse lock-stripe count.
	Shards []int
	// Mem and Disk are tier capacity targets.
	Mem  []core.Bytes
	Disk []core.Bytes
	// Backend is "heap" (all-in-memory simulation backends), "disk"
	// (real file-per-blob + segment backends in a temp dir) or "mmap"
	// (the middle tier on the arena-mapped store, disk-shaped names so
	// cells stay comparable across backends).
	Backend []string
	// Capacity entries are "static" or "<mode>@<frac>x<factor>" with mode
	// shrink, grow or oscillate: at frac of the trace, retarget every
	// finite tier to factor × its size. Oscillate re-fires at each
	// multiple of frac, alternating factor and 1 — the
	// capacity-changes-mid-workload scenario class.
	Capacity []string
}

// BurstSpec is a parsed Burst axis value.
type BurstSpec struct {
	Count     int
	Intensity float64
}

// CapacitySpec is a parsed Capacity axis value.
type CapacitySpec struct {
	// Mode is "static", "shrink", "grow" or "oscillate".
	Mode string
	// At is the trace fraction at which the first retarget fires; Factor
	// scales every finite tier's capacity. Oscillate fires again at each
	// multiple of At, alternating Factor and 1.
	At, Factor float64
}

// Static reports whether the schedule never retargets capacities.
func (c CapacitySpec) Static() bool { return c.Mode == "" || c.Mode == "static" }

// Cell is one fully instantiated point of the cross-product.
type Cell struct {
	Zipf, OneTimerMass, Churn float64
	Burst                     BurstSpec
	BurstLabel                string

	Shards        int
	Mem, Disk     core.Bytes
	Backend       string
	Capacity      CapacitySpec
	CapacityLabel string

	Policy string
}

// ID names the cell in results JSON, tables and check output.
func (c Cell) ID() string {
	return fmt.Sprintf("zipf=%s,mass=%s,churn=%s,burst=%s | shards=%d,mem=%v,disk=%v,backend=%s,cap=%s | %s",
		ftoa(c.Zipf), ftoa(c.OneTimerMass), ftoa(c.Churn), c.BurstLabel,
		c.Shards, c.Mem, c.Disk, c.Backend, c.CapacityLabel, c.Policy)
}

func ftoa(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// The policy axis vocabulary. Warehouse policies run the full admission
// machinery; cache policies replay the trace through internal/cache.
var warehousePolicies = map[string]bool{
	"paper":      true, // evidence-based admission priority (the paper)
	"newest-top": true, // every newcomer enters at top priority (LRU tradition)
	"pessimist":  true, // every newcomer enters at the bottom
}

var cachePolicies = map[string]bool{
	"lru": true, "mru": true, "fifo": true, "lfu": true, "mfu": true,
	"gdsf": true, "lru2": true, "size": true, "infinite": true,
}

// KnownPolicies lists the accepted policy axis values, sorted.
func KnownPolicies() []string {
	var out []string
	for p := range warehousePolicies {
		out = append(out, p)
	}
	for p := range cachePolicies {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// GatedMetrics maps each check-gated metric to its regression direction:
// true = higher is better (a drop regresses), false = lower is better.
var GatedMetrics = map[string]bool{
	"hit_ratio":      true,
	"mem_hit_ratio":  true,
	"origin_fetches": false,
	"stale_serves":   false,
	"latency_mean":   false,
	"latency_p50":    false,
	"latency_p90":    false,
	"latency_p99":    false,
}

// maxCells bounds the cross-product so a typo'd axis cannot melt CI.
const maxCells = 512

var nameRe = regexp.MustCompile(`^[a-zA-Z0-9_-]+$`)

// DefaultSpec returns the axis-free skeleton: callers (and the decoders)
// fill axes in; absent axes default to a single neutral value.
func DefaultSpec() Spec {
	return Spec{
		Run: RunConfig{
			Seed:          1,
			Sites:         10,
			PagesPerSite:  40,
			Sessions:      1200,
			Length:        200_000,
			Users:         200,
			MaintainEvery: 3600,
			OriginLatency: 150,
		},
		Workload: WorkloadAxes{
			Zipf:         []float64{0.9},
			OneTimerMass: []float64{0.5},
			Churn:        []float64{0},
			Burst:        []string{"none"},
		},
		Topology: TopologyAxes{
			Shards:   []int{1},
			Mem:      []core.Bytes{2 * core.MB},
			Disk:     []core.Bytes{64 * core.MB},
			Backend:  []string{"heap"},
			Capacity: []string{"static"},
		},
		Policies:   []string{"paper", "lru", "infinite"},
		Tolerances: map[string]float64{"default": 0.05},
	}
}

// Validate checks the spec's internal consistency. It is called by the
// decoders after mapping, and by callers who build specs in code.
func (s *Spec) Validate() error {
	if s.Name == "" || !nameRe.MatchString(s.Name) {
		return fmt.Errorf("scenario: %w: name %q must be non-empty [a-zA-Z0-9_-]", core.ErrInvalid, s.Name)
	}
	r := s.Run
	if r.Sites < 1 || r.PagesPerSite < 1 || r.Sessions < 1 || r.Users < 1 {
		return fmt.Errorf("scenario: %w: run sites/pages_per_site/sessions/users must be >= 1", core.ErrInvalid)
	}
	if r.Length <= 0 || r.MaintainEvery <= 0 || r.OriginLatency < 0 {
		return fmt.Errorf("scenario: %w: run length/maintain_every must be positive, origin_latency >= 0", core.ErrInvalid)
	}
	axes := []struct {
		name string
		n    int
	}{
		{"workload.zipf", len(s.Workload.Zipf)},
		{"workload.one_timer_mass", len(s.Workload.OneTimerMass)},
		{"workload.churn", len(s.Workload.Churn)},
		{"workload.burst", len(s.Workload.Burst)},
		{"topology.shards", len(s.Topology.Shards)},
		{"topology.mem", len(s.Topology.Mem)},
		{"topology.disk", len(s.Topology.Disk)},
		{"topology.backend", len(s.Topology.Backend)},
		{"topology.capacity", len(s.Topology.Capacity)},
		{"policy.policies", len(s.Policies)},
	}
	cells := 1
	for _, a := range axes {
		if a.n == 0 {
			return fmt.Errorf("scenario: %w: empty axis %s", core.ErrInvalid, a.name)
		}
		cells *= a.n
	}
	if cells > maxCells {
		return fmt.Errorf("scenario: %w: matrix has %d cells (max %d)", core.ErrInvalid, cells, maxCells)
	}
	for _, z := range s.Workload.Zipf {
		if z <= 0 || z > 5 {
			return fmt.Errorf("scenario: %w: workload.zipf %v out of (0, 5]", core.ErrInvalid, z)
		}
	}
	for _, m := range s.Workload.OneTimerMass {
		if m < 0 || m > 1 {
			return fmt.Errorf("scenario: %w: workload.one_timer_mass %v out of [0, 1]", core.ErrInvalid, m)
		}
	}
	for _, c := range s.Workload.Churn {
		if c < 0 || c > 1 {
			return fmt.Errorf("scenario: %w: workload.churn %v out of [0, 1]", core.ErrInvalid, c)
		}
	}
	for _, b := range s.Workload.Burst {
		if _, err := ParseBurst(b); err != nil {
			return err
		}
	}
	for _, n := range s.Topology.Shards {
		if n < 1 || n > 256 {
			return fmt.Errorf("scenario: %w: topology.shards %d out of [1, 256]", core.ErrInvalid, n)
		}
	}
	for _, b := range s.Topology.Mem {
		if b <= 0 {
			return fmt.Errorf("scenario: %w: topology.mem %v must be positive", core.ErrInvalid, b)
		}
	}
	for _, b := range s.Topology.Disk {
		if b <= 0 {
			return fmt.Errorf("scenario: %w: topology.disk %v must be positive", core.ErrInvalid, b)
		}
	}
	for _, b := range s.Topology.Backend {
		if b != "heap" && b != "disk" && b != "mmap" {
			return fmt.Errorf("scenario: %w: topology.backend %q (want heap, disk or mmap)", core.ErrInvalid, b)
		}
	}
	for _, c := range s.Topology.Capacity {
		if _, err := ParseCapacity(c); err != nil {
			return err
		}
	}
	for _, p := range s.Policies {
		if !warehousePolicies[p] && !cachePolicies[p] {
			return fmt.Errorf("scenario: %w: unknown policy %q (known: %s)",
				core.ErrInvalid, p, strings.Join(KnownPolicies(), ", "))
		}
	}
	for metric, tol := range s.Tolerances {
		if _, gated := GatedMetrics[metric]; metric != "default" && !gated {
			return fmt.Errorf("scenario: %w: tolerance for unknown metric %q", core.ErrInvalid, metric)
		}
		if tol <= 0 || tol > 1 {
			return fmt.Errorf("scenario: %w: tolerance %s=%v out of (0, 1]", core.ErrInvalid, metric, tol)
		}
	}
	return nil
}

// ParseBurst parses a Burst axis entry: "none" or "<count>x<intensity>".
func ParseBurst(s string) (BurstSpec, error) {
	if s == "none" {
		return BurstSpec{}, nil
	}
	var b BurstSpec
	if _, err := fmt.Sscanf(s, "%dx%f", &b.Count, &b.Intensity); err != nil ||
		b.Count < 1 || b.Count > 32 || b.Intensity <= 0 || b.Intensity > 1 {
		return BurstSpec{}, fmt.Errorf("scenario: %w: burst %q (want \"none\" or \"<count>x<intensity>\", e.g. \"2x0.8\")",
			core.ErrInvalid, s)
	}
	return b, nil
}

// ParseCapacity parses a Capacity axis entry: "static" or
// "<mode>@<frac>x<factor>" with mode shrink (factor < 1), grow
// (factor > 1) or oscillate (either direction, alternating with 1).
func ParseCapacity(s string) (CapacitySpec, error) {
	if s == "static" {
		return CapacitySpec{Mode: "static"}, nil
	}
	bad := func() (CapacitySpec, error) {
		return CapacitySpec{}, fmt.Errorf("scenario: %w: capacity %q (want \"static\" or \"<shrink|grow|oscillate>@<frac>x<factor>\", e.g. \"shrink@0.5x0.25\"; shrink needs factor < 1, grow > 1, both in (0, 4])",
			core.ErrInvalid, s)
	}
	mode, sched, ok := strings.Cut(s, "@")
	if !ok {
		return bad()
	}
	var c CapacitySpec
	if _, err := fmt.Sscanf(sched, "%fx%f", &c.At, &c.Factor); err != nil ||
		c.At <= 0 || c.At >= 1 || c.Factor <= 0 || c.Factor > 4 {
		return bad()
	}
	switch mode {
	case "shrink":
		if c.Factor >= 1 {
			return bad()
		}
	case "grow":
		if c.Factor <= 1 {
			return bad()
		}
	case "oscillate":
		if c.Factor == 1 {
			return bad()
		}
	default:
		return bad()
	}
	c.Mode = mode
	return c, nil
}

// Cells expands the validated spec into its cross-product, in a fixed
// axis-major order (workload outermost, policy innermost) so cell lists
// — and everything derived from them — are deterministic.
func (s *Spec) Cells() []Cell {
	var out []Cell
	for _, zipf := range s.Workload.Zipf {
		for _, mass := range s.Workload.OneTimerMass {
			for _, churn := range s.Workload.Churn {
				for _, burst := range s.Workload.Burst {
					bs, _ := ParseBurst(burst)
					for _, shards := range s.Topology.Shards {
						for _, mem := range s.Topology.Mem {
							for _, disk := range s.Topology.Disk {
								for _, backend := range s.Topology.Backend {
									for _, capSched := range s.Topology.Capacity {
										cs, _ := ParseCapacity(capSched)
										for _, pol := range s.Policies {
											out = append(out, Cell{
												Zipf: zipf, OneTimerMass: mass, Churn: churn,
												Burst: bs, BurstLabel: burst,
												Shards: shards, Mem: mem, Disk: disk,
												Backend: backend, Capacity: cs, CapacityLabel: capSched,
												Policy: pol,
											})
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return out
}

// Tolerance returns the check slack for metric, falling back to the
// "default" entry, then to 0.05.
func (s *Spec) Tolerance(metric string) float64 {
	if t, ok := s.Tolerances[metric]; ok {
		return t
	}
	if t, ok := s.Tolerances["default"]; ok {
		return t
	}
	return 0.05
}
