package scenario

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Results is the machine-readable outcome of one matrix run — what
// BENCH_<name>.json holds and what -check diffs against. Marshaling is
// deterministic: struct fields keep declaration order, metric maps
// marshal with sorted keys, and every value is in simulation ticks or
// counts (never wall time), so a same-seed rerun is byte-identical.
type Results struct {
	Name  string       `json:"name"`
	Seed  int64        `json:"seed"`
	Cells []CellResult `json:"cells"`
}

// CellResult pairs one cell's coordinates with its measured metrics.
type CellResult struct {
	ID           string  `json:"id"`
	Zipf         float64 `json:"zipf"`
	OneTimerMass float64 `json:"one_timer_mass"`
	Churn        float64 `json:"churn"`
	Burst        string  `json:"burst"`
	Shards       int     `json:"shards"`
	Mem          string  `json:"mem"`
	Disk         string  `json:"disk"`
	Backend      string  `json:"backend"`
	Capacity     string  `json:"capacity"`
	Policy       string  `json:"policy"`

	Metrics map[string]float64 `json:"metrics"`
}

// MarshalJSON renders the results indented, ready to write to disk.
func (r *Results) JSON() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// ParseResults reads a results file written by JSON.
func ParseResults(data []byte) (*Results, error) {
	var r Results
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("scenario: results: %v", err)
	}
	return &r, nil
}

// Regression is one gated metric that moved past its tolerance in the
// wrong direction relative to the baseline.
type Regression struct {
	Cell   string
	Metric string
	Base   float64
	Got    float64
	Tol    float64
}

func (g Regression) String() string {
	return fmt.Sprintf("%s: %s: baseline %.6g, got %.6g (tolerance %.0f%%)",
		g.Cell, g.Metric, g.Base, g.Got, 100*g.Tol)
}

// Check compares a fresh run against a baseline under the spec's
// per-metric tolerances and returns every regression, sorted by cell then
// metric. Only gated metrics participate: higher-better metrics regress
// when fresh < base*(1-tol), lower-better when fresh > base*(1+tol). A
// baseline cell missing from the fresh run is itself a regression
// (coverage must not silently shrink); fresh-only cells are ignored, so
// growing the matrix does not require regenerating old baselines.
func Check(baseline, fresh *Results, spec *Spec) []Regression {
	freshBy := make(map[string]CellResult, len(fresh.Cells))
	for _, c := range fresh.Cells {
		freshBy[c.ID] = c
	}
	var regs []Regression
	for _, bc := range baseline.Cells {
		fc, ok := freshBy[bc.ID]
		if !ok {
			regs = append(regs, Regression{Cell: bc.ID, Metric: "(cell missing from fresh run)"})
			continue
		}
		metrics := make([]string, 0, len(bc.Metrics))
		for m := range bc.Metrics {
			metrics = append(metrics, m)
		}
		sort.Strings(metrics)
		for _, m := range metrics {
			higherBetter, gated := GatedMetrics[m]
			if !gated {
				continue
			}
			base := bc.Metrics[m]
			got, ok := fc.Metrics[m]
			if !ok {
				regs = append(regs, Regression{Cell: bc.ID, Metric: m + " (missing)", Base: base})
				continue
			}
			tol := spec.Tolerance(m)
			if regressed(base, got, tol, higherBetter) {
				regs = append(regs, Regression{Cell: bc.ID, Metric: m, Base: base, Got: got, Tol: tol})
			}
		}
	}
	sort.Slice(regs, func(i, j int) bool {
		if regs[i].Cell != regs[j].Cell {
			return regs[i].Cell < regs[j].Cell
		}
		return regs[i].Metric < regs[j].Metric
	})
	return regs
}

func regressed(base, got, tol float64, higherBetter bool) bool {
	if higherBetter {
		return got < base*(1-tol)
	}
	if base == 0 {
		// A lower-better metric that was zero has no relative slack: any
		// appearance is a regression.
		return got > 0
	}
	return got > base*(1+tol)
}
