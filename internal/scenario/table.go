package scenario

import (
	"fmt"

	"cbfww/internal/experiments"
)

// Table renders the matrix results as the human-facing companion to the
// JSON: one row per cell, headline metrics as columns. Axis values that
// never vary are lifted into a note instead of repeated down a column,
// keeping small matrices readable.
func (r *Results) Table() experiments.Table {
	t := experiments.Table{
		Title:  fmt.Sprintf("Scenario matrix: %s (seed %d, %d cells)", r.Name, r.Seed, len(r.Cells)),
		Header: []string{"workload", "topology", "policy", "hit", "memhit", "origin", "stale", "p99", "moved"},
	}
	for _, c := range r.Cells {
		m := c.Metrics
		moved := m["bytes_moved_memory"] + m["bytes_moved_disk"] + m["bytes_moved_tertiary"]
		t.AddRow(
			fmt.Sprintf("z=%g m=%g c=%g b=%s", c.Zipf, c.OneTimerMass, c.Churn, c.Burst),
			fmt.Sprintf("s=%d %s/%s %s %s", c.Shards, c.Mem, c.Disk, c.Backend, c.Capacity),
			c.Policy,
			fmt.Sprintf("%5.1f%%", 100*m["hit_ratio"]),
			fmt.Sprintf("%5.1f%%", 100*m["mem_hit_ratio"]),
			fmt.Sprintf("%.0f", m["origin_fetches"]),
			fmt.Sprintf("%.0f", m["stale_serves"]),
			fmt.Sprintf("%.0f", m["latency_p99"]),
			fmt.Sprintf("%.1fMB", moved/(1024*1024)),
		)
	}
	t.AddNote("workload: z=zipf skew, m=one-timer mass, c=churn, b=burst schedule")
	t.AddNote("topology: s=shards, mem/disk capacity, backend, capacity schedule")
	t.AddNote("p99 in simulation ticks; moved sums bytes written across all tiers")
	return t
}
