package scenario

import (
	"bytes"
	"strings"
	"testing"

	"cbfww/internal/core"
)

// tinySpec is a fast matrix that still crosses both runner kinds
// (warehouse and cache policies) and both capacity schedules.
func tinySpec(t *testing.T) *Spec {
	t.Helper()
	s := DefaultSpec()
	s.Name = "tiny"
	s.Run.Sites = 3
	s.Run.PagesPerSite = 8
	s.Run.Sessions = 60
	s.Run.Users = 12
	s.Run.Length = 8000
	s.Run.MaintainEvery = 2000
	s.Topology.Mem = []core.Bytes{256 * core.KB}
	s.Topology.Disk = []core.Bytes{4 * core.MB}
	s.Topology.Capacity = []string{"static", "shrink@0.5x0.25"}
	s.Policies = []string{"paper", "lru", "infinite"}
	if err := s.Validate(); err != nil {
		t.Fatalf("tinySpec invalid: %v", err)
	}
	return &s
}

func runTiny(t *testing.T) *Results {
	t.Helper()
	r := &Runner{Spec: tinySpec(t), WorkDir: t.TempDir()}
	res, err := r.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestRunnerDeterministic(t *testing.T) {
	a, b := runTiny(t), runTiny(t)
	aj, err := a.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	bj, err := b.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	if !bytes.Equal(aj, bj) {
		t.Fatalf("same seed, different bytes:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", aj, bj)
	}
}

func TestRunnerMetricsSane(t *testing.T) {
	res := runTiny(t)
	if len(res.Cells) != 6 { // 2 capacity schedules x 3 policies
		t.Fatalf("cells = %d", len(res.Cells))
	}
	var sawStaticInf, sawShrunkLRU bool
	for _, c := range res.Cells {
		m := c.Metrics
		if m["requests"] <= 0 {
			t.Errorf("%s: no requests", c.ID)
		}
		if m["hit_ratio"] < 0 || m["hit_ratio"] > 1 {
			t.Errorf("%s: hit_ratio = %v", c.ID, m["hit_ratio"])
		}
		for _, k := range []string{"origin_fetches", "stale_serves", "latency_mean",
			"latency_p50", "latency_p90", "latency_p99",
			"bytes_moved_memory", "bytes_moved_disk", "bytes_moved_tertiary"} {
			if v, ok := m[k]; !ok || v < 0 {
				t.Errorf("%s: metric %s = %v (present %v)", c.ID, k, v, ok)
			}
		}
		if c.Policy == "infinite" && c.Capacity == "static" {
			sawStaticInf = true
			if m["hit_ratio"] <= 0 {
				t.Errorf("infinite cache hit nothing: %v", m["hit_ratio"])
			}
		}
		if c.Policy == "lru" && strings.HasPrefix(c.Capacity, "shrink") {
			sawShrunkLRU = true
		}
		if warehousePolicies[c.Policy] && m["bytes_moved_memory"]+m["bytes_moved_disk"]+m["bytes_moved_tertiary"] <= 0 {
			t.Errorf("%s: warehouse moved no bytes", c.ID)
		}
	}
	if !sawStaticInf || !sawShrunkLRU {
		t.Errorf("expected cells missing (staticInf=%v shrunkLRU=%v)", sawStaticInf, sawShrunkLRU)
	}
}

// The shrink schedule must actually bite: the same LRU cell with a
// capacity shrink can do no better than its static twin.
func TestShrinkReducesCacheHits(t *testing.T) {
	res := runTiny(t)
	byCell := map[string]map[string]float64{}
	for _, c := range res.Cells {
		byCell[c.Policy+"/"+c.Capacity] = c.Metrics
	}
	static, shrunk := byCell["lru/static"], byCell["lru/shrink@0.5x0.25"]
	if static == nil || shrunk == nil {
		t.Fatalf("missing lru cells: %v", byCell)
	}
	if shrunk["hit_ratio"] > static["hit_ratio"]+1e-9 {
		t.Errorf("shrunk LRU beats static: %v > %v", shrunk["hit_ratio"], static["hit_ratio"])
	}
}

func TestCheckFlagsRegressions(t *testing.T) {
	spec := tinySpec(t)
	base := runTiny(t)
	fresh := runTiny(t)

	if regs := Check(base, fresh, spec); len(regs) != 0 {
		t.Fatalf("identical runs regressed: %v", regs)
	}

	// Perturb one gated metric past tolerance: hit_ratio is higher-better,
	// so a baseline far above the fresh value must trip.
	perturbed := base.Cells[2].ID
	base.Cells[2].Metrics["hit_ratio"] = base.Cells[2].Metrics["hit_ratio"]*2 + 0.5
	regs := Check(base, fresh, spec)
	if len(regs) != 1 {
		t.Fatalf("regressions = %v, want exactly 1", regs)
	}
	if regs[0].Cell != perturbed || regs[0].Metric != "hit_ratio" {
		t.Errorf("regression names %q/%q, want %q/hit_ratio", regs[0].Cell, regs[0].Metric, perturbed)
	}
	if !strings.Contains(regs[0].String(), "hit_ratio") {
		t.Errorf("String() = %q", regs[0].String())
	}

	// A baseline-only cell is a coverage regression.
	extra := base.Cells[0]
	extra.ID = "zipf=9,ghost | cell | lru"
	base.Cells = append(base.Cells, extra)
	base.Cells[2].Metrics["hit_ratio"] = fresh.Cells[2].Metrics["hit_ratio"]
	regs = Check(base, fresh, spec)
	if len(regs) != 1 || !strings.Contains(regs[0].Metric, "missing") {
		t.Errorf("missing-cell check = %v", regs)
	}

	// Informational metrics never gate.
	base.Cells = base.Cells[:len(base.Cells)-1]
	base.Cells[1].Metrics["bytes_moved_memory"] = 1e12
	if regs := Check(base, fresh, spec); len(regs) != 0 {
		t.Errorf("informational metric gated: %v", regs)
	}
}

func TestCheckLowerBetterDirection(t *testing.T) {
	spec := tinySpec(t)
	mk := func(stale float64) *Results {
		return &Results{Name: "d", Cells: []CellResult{{
			ID: "only", Metrics: map[string]float64{"stale_serves": stale},
		}}}
	}
	// Fresh got worse (more stale serves): regression.
	if regs := Check(mk(100), mk(120), spec); len(regs) != 1 {
		t.Errorf("worse lower-better metric not flagged: %v", regs)
	}
	// Fresh improved: fine.
	if regs := Check(mk(100), mk(80), spec); len(regs) != 0 {
		t.Errorf("improvement flagged: %v", regs)
	}
	// Zero baseline: any appearance regresses.
	if regs := Check(mk(0), mk(1), spec); len(regs) != 1 {
		t.Errorf("zero-baseline appearance not flagged: %v", regs)
	}
}

func TestResultsRoundTrip(t *testing.T) {
	res := runTiny(t)
	data, err := res.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	back, err := ParseResults(data)
	if err != nil {
		t.Fatalf("ParseResults: %v", err)
	}
	again, err := back.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	if !bytes.Equal(data, again) {
		t.Fatalf("round trip changed bytes")
	}
	if _, err := ParseResults([]byte("{")); err == nil {
		t.Errorf("ParseResults accepted malformed JSON")
	}
}

func TestBurstAxisRuns(t *testing.T) {
	s := tinySpec(t)
	s.Workload.Burst = []string{"2x0.8"}
	s.Topology.Capacity = []string{"static"}
	s.Policies = []string{"paper"}
	res, err := (&Runner{Spec: s}).Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Cells) != 1 || res.Cells[0].Burst != "2x0.8" {
		t.Fatalf("cells = %+v", res.Cells)
	}
	if res.Cells[0].Metrics["requests"] <= 0 {
		t.Errorf("burst cell served nothing")
	}
}

func TestDiskBackendCell(t *testing.T) {
	s := tinySpec(t)
	s.Run.Sessions = 30
	s.Topology.Backend = []string{"disk"}
	s.Topology.Capacity = []string{"static"}
	s.Policies = []string{"paper"}
	res, err := (&Runner{Spec: s, WorkDir: t.TempDir()}).Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Cells[0].Metrics["requests"] <= 0 {
		t.Errorf("disk cell served nothing")
	}
}

// backend=mmap runs the middle tier on the arena store, under a
// mid-workload grow — the dynamic-capacity cell the tier table exists for.
func TestMmapBackendCellWithGrow(t *testing.T) {
	s := tinySpec(t)
	s.Run.Sessions = 30
	s.Topology.Backend = []string{"mmap"}
	s.Topology.Capacity = []string{"grow@0.5x2"}
	s.Policies = []string{"paper"}
	res, err := (&Runner{Spec: s, WorkDir: t.TempDir()}).Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	m := res.Cells[0].Metrics
	if m["requests"] <= 0 {
		t.Errorf("mmap cell served nothing")
	}
	if m["bytes_moved_disk"] <= 0 {
		t.Errorf("mmap-backed middle tier moved no bytes")
	}
}

// An oscillating schedule shrinks and restores repeatedly: the shrink
// legs must show up as demoted bytes, the grow legs as re-promotions.
func TestOscillateScheduleDemotes(t *testing.T) {
	s := tinySpec(t)
	s.Topology.Capacity = []string{"oscillate@0.25x0.25"}
	s.Policies = []string{"paper"}
	res, err := (&Runner{Spec: s, WorkDir: t.TempDir()}).Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	m := res.Cells[0].Metrics
	if m["bytes_demoted_memory"] <= 0 {
		t.Errorf("oscillation demoted nothing from memory: %v", m)
	}
}
