package scenario

import (
	"errors"
	"strings"
	"testing"

	"cbfww/internal/core"
)

func validSpecTOML() string {
	return `
name = "t"
[workload]
zipf = [0.9]
[policy]
policies = ["paper", "lru"]
`
}

func TestParseTOMLValid(t *testing.T) {
	s, err := ParseTOML([]byte(validSpecTOML()))
	if err != nil {
		t.Fatalf("ParseTOML: %v", err)
	}
	if s.Name != "t" {
		t.Errorf("Name = %q", s.Name)
	}
	if len(s.Policies) != 2 || s.Policies[0] != "paper" {
		t.Errorf("Policies = %v", s.Policies)
	}
	// Unset axes keep their defaults.
	if len(s.Topology.Mem) != 1 || s.Topology.Mem[0] != 2*core.MB {
		t.Errorf("default mem axis = %v", s.Topology.Mem)
	}
}

func TestParseTOMLFullSpec(t *testing.T) {
	src := `
# full exercise of the decoder surface
name = "full"
[run]
seed = 7
sites = 4
pages_per_site = 8
sessions = 50
users = 10
length = 10_000
maintain_every = 500
origin_latency = 100
[workload]
zipf = [0.7, 1.1]
one_timer_mass = [0.2]
churn = [0, 0.001]
burst = ["none", "2x0.8"]
[topology]
shards = [1, 4]
mem = ["512KB", 1048576]
disk = ["16MB"]
backend = ["heap"]
capacity = ["static", "shrink@0.5x0.25"]
[policy]
policies = ["paper", "lru", "infinite"]
[tolerances]
default = 0.1
hit_ratio = 0.02
stale_serves = 0.25   # lower-better metrics are gated too
`
	s, err := ParseTOML([]byte(src))
	if err != nil {
		t.Fatalf("ParseTOML: %v", err)
	}
	if s.Run.Seed != 7 || s.Run.Length != 10_000 {
		t.Errorf("run = %+v", s.Run)
	}
	if s.Topology.Mem[0] != 512*core.KB || s.Topology.Mem[1] != core.MB {
		t.Errorf("mem = %v", s.Topology.Mem)
	}
	if got := len(s.Cells()); got != 2*1*2*2*2*2*1*1*2*3 {
		t.Errorf("cells = %d", got)
	}
	if s.Tolerance("hit_ratio") != 0.02 || s.Tolerance("latency_p99") != 0.1 || s.Tolerance("stale_serves") != 0.25 {
		t.Errorf("tolerances = %v", s.Tolerances)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"unknown top key", "name = \"t\"\nbogus = 1\n", "unknown key bogus"},
		{"unknown run key", "name = \"t\"\n[run]\nseeed = 1\n", "unknown key run.seeed"},
		{"unknown workload key", "name = \"t\"\n[workload]\nzpif = [1.0]\n", "unknown key workload.zpif"},
		{"unknown section", "name = \"t\"\n[wrkload]\nzipf = [1.0]\n", "unknown key wrkload"},
		{"empty axis", "name = \"t\"\n[workload]\nzipf = []\n", "empty axis workload.zipf"},
		{"bad policy", "name = \"t\"\n[policy]\npolicies = [\"arc\"]\n", "unknown policy"},
		{"tolerance too big", "name = \"t\"\n[tolerances]\ndefault = 1.5\n", "out of (0, 1]"},
		{"tolerance zero", "name = \"t\"\n[tolerances]\nhit_ratio = 0\n", "out of (0, 1]"},
		{"tolerance unknown metric", "name = \"t\"\n[tolerances]\nhits = 0.1\n", "unknown metric"},
		{"missing name", "[workload]\nzipf = [0.9]\n", "name"},
		{"bad name", "name = \"a b\"\n", "name"},
		{"zipf range", "name = \"t\"\n[workload]\nzipf = [9.0]\n", "out of (0, 5]"},
		{"bad burst", "name = \"t\"\n[workload]\nburst = [\"lots\"]\n", "burst"},
		{"bad capacity", "name = \"t\"\n[topology]\ncapacity = [\"halve\"]\n", "capacity"},
		{"bad backend", "name = \"t\"\n[topology]\nbackend = [\"tape\"]\n", "backend"},
		{"wrong type", "name = \"t\"\n[run]\nseed = \"one\"\n", "must be an integer"},
		{"bad toml", "name = \"t\"\nkey value\n", "line 2"},
		{"dup key", "name = \"t\"\nname = \"u\"\n", "duplicate key"},
		{"bad size", "name = \"t\"\n[topology]\nmem = [\"2XB\"]\n", "bad size"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseTOML([]byte(tc.src))
			if err == nil {
				t.Fatalf("ParseTOML accepted %q", tc.src)
			}
			if !errors.Is(err, core.ErrInvalid) {
				t.Errorf("err = %v, want ErrInvalid", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err = %q, want substring %q", err, tc.want)
			}
		})
	}
}

func TestCellCapEnforced(t *testing.T) {
	s := DefaultSpec()
	s.Name = "big"
	s.Workload.Zipf = make([]float64, 30)
	for i := range s.Workload.Zipf {
		s.Workload.Zipf[i] = 0.5 + float64(i)/100
	}
	s.Topology.Shards = []int{1, 2, 4, 8}
	s.Policies = []string{"paper", "lru", "fifo", "gdsf", "infinite"}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "max 512") {
		t.Errorf("Validate = %v, want cell-cap error", err)
	}
}

func TestParseJSON(t *testing.T) {
	src := `{"name": "j", "run": {"seed": 3}, "workload": {"zipf": [0.8]},
	         "policy": {"policies": ["lru"]}, "tolerances": {"default": 0.2}}`
	s, err := ParseJSON([]byte(src))
	if err != nil {
		t.Fatalf("ParseJSON: %v", err)
	}
	if s.Name != "j" || s.Run.Seed != 3 || s.Tolerance("hit_ratio") != 0.2 {
		t.Errorf("spec = %+v", s)
	}
	if _, err := ParseJSON([]byte(`{"name": "j", "runn": {}}`)); err == nil ||
		!strings.Contains(err.Error(), "unknown key runn") {
		t.Errorf("unknown JSON key: err = %v", err)
	}
}

func TestParseBurst(t *testing.T) {
	if b, err := ParseBurst("none"); err != nil || b.Count != 0 {
		t.Errorf("none = %+v, %v", b, err)
	}
	b, err := ParseBurst("2x0.8")
	if err != nil || b.Count != 2 || b.Intensity != 0.8 {
		t.Errorf("2x0.8 = %+v, %v", b, err)
	}
	for _, bad := range []string{"", "0x0.5", "2x0", "2x1.5", "40x0.5", "x", "2"} {
		if _, err := ParseBurst(bad); err == nil {
			t.Errorf("ParseBurst(%q) accepted", bad)
		}
	}
}

func TestParseCapacity(t *testing.T) {
	if c, err := ParseCapacity("static"); err != nil || !c.Static() {
		t.Errorf("static = %+v, %v", c, err)
	}
	c, err := ParseCapacity("shrink@0.5x0.25")
	if err != nil || c.Mode != "shrink" || c.At != 0.5 || c.Factor != 0.25 {
		t.Errorf("shrink = %+v, %v", c, err)
	}
	c, err = ParseCapacity("grow@0.25x2")
	if err != nil || c.Mode != "grow" || c.At != 0.25 || c.Factor != 2 {
		t.Errorf("grow = %+v, %v", c, err)
	}
	c, err = ParseCapacity("oscillate@0.2x0.5")
	if err != nil || c.Mode != "oscillate" || c.At != 0.2 || c.Factor != 0.5 {
		t.Errorf("oscillate = %+v, %v", c, err)
	}
	for _, bad := range []string{
		"", "shrink", "shrink@0x0.5", "shrink@1x0.5", "shrink@0.5x0", "shrink@0.5x9",
		"shrink@0.5x2",    // shrink must shrink
		"grow@0.5x0.5",    // grow must grow
		"oscillate@0.5x1", // a no-op schedule
		"halve@0.5x0.5",   // unknown mode
	} {
		if _, err := ParseCapacity(bad); err == nil {
			t.Errorf("ParseCapacity(%q) accepted", bad)
		}
	}
}

func TestCapacityEvents(t *testing.T) {
	static, _ := ParseCapacity("static")
	if evs := capacityEvents(static, 1000); len(evs) != 0 {
		t.Errorf("static events = %v", evs)
	}
	shrink, _ := ParseCapacity("shrink@0.5x0.25")
	if evs := capacityEvents(shrink, 1000); len(evs) != 1 || evs[0].at != 500 || evs[0].factor != 0.25 {
		t.Errorf("shrink events = %v", evs)
	}
	grow, _ := ParseCapacity("grow@0.25x2")
	if evs := capacityEvents(grow, 1000); len(evs) != 1 || evs[0].at != 250 || evs[0].factor != 2 {
		t.Errorf("grow events = %v", evs)
	}
	osc, _ := ParseCapacity("oscillate@0.25x0.5")
	evs := capacityEvents(osc, 1000)
	if len(evs) != 3 {
		t.Fatalf("oscillate events = %v", evs)
	}
	want := []capacityEvent{{250, 0.5}, {500, 1}, {750, 0.5}}
	for i, ev := range evs {
		if ev != want[i] {
			t.Errorf("oscillate event %d = %v, want %v", i, ev, want[i])
		}
	}
}

func TestParseBytes(t *testing.T) {
	cases := map[string]core.Bytes{
		"512KB": 512 * core.KB,
		"2MB":   2 * core.MB,
		"1.5GB": core.Bytes(1.5 * float64(core.GB)),
		"4096":  4096,
		"100B":  100,
	}
	for in, want := range cases {
		got, err := ParseBytes(in)
		if err != nil || got != want {
			t.Errorf("ParseBytes(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "MB", "-2MB", "0", "two"} {
		if _, err := ParseBytes(bad); err == nil {
			t.Errorf("ParseBytes(%q) accepted", bad)
		}
	}
}

func TestCellsOrderStable(t *testing.T) {
	s := DefaultSpec()
	s.Name = "order"
	s.Workload.Zipf = []float64{0.7, 1.1}
	s.Policies = []string{"paper", "lru"}
	a, b := s.Cells(), s.Cells()
	if len(a) != 4 {
		t.Fatalf("cells = %d", len(a))
	}
	for i := range a {
		if a[i].ID() != b[i].ID() {
			t.Fatalf("cell order unstable at %d: %q vs %q", i, a[i].ID(), b[i].ID())
		}
	}
	// Policy is the innermost axis.
	if a[0].Policy != "paper" || a[1].Policy != "lru" || a[0].Zipf != a[1].Zipf {
		t.Errorf("unexpected expansion order: %q, %q", a[0].ID(), a[1].ID())
	}
}
