package scenario

import (
	"fmt"
	"strconv"
	"strings"

	"cbfww/internal/core"
)

// parseTOML decodes the TOML subset the scenario spec uses into nested
// maps: '#' comments, [section] and [section.sub] tables, and
// key = value lines where value is a basic string, integer, float, bool,
// or a (possibly multi-line) array of those. It is deliberately small —
// a validated-config reader, not a general TOML implementation — and
// every violation names its line.
func parseTOML(src string) (map[string]any, error) {
	root := map[string]any{}
	cur := root
	lines := strings.Split(src, "\n")
	for i := 0; i < len(lines); i++ {
		lineNo := i + 1
		line := strings.TrimSpace(stripComment(lines[i]))
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "[") {
			if !strings.HasSuffix(line, "]") || strings.HasPrefix(line, "[[") {
				return nil, tomlErr(lineNo, "malformed table header %q", line)
			}
			path := strings.TrimSpace(line[1 : len(line)-1])
			if path == "" {
				return nil, tomlErr(lineNo, "empty table header")
			}
			m := root
			for _, part := range strings.Split(path, ".") {
				if !validBareKey(part) {
					return nil, tomlErr(lineNo, "bad table name %q", path)
				}
				switch sub := m[part].(type) {
				case nil:
					next := map[string]any{}
					m[part] = next
					m = next
				case map[string]any:
					m = sub
				default:
					return nil, tomlErr(lineNo, "table %q collides with a value", path)
				}
			}
			cur = m
			continue
		}
		eq := strings.Index(line, "=")
		if eq <= 0 {
			return nil, tomlErr(lineNo, "expected key = value, got %q", line)
		}
		key := strings.TrimSpace(line[:eq])
		if !validBareKey(key) {
			return nil, tomlErr(lineNo, "bad key %q", key)
		}
		raw := strings.TrimSpace(line[eq+1:])
		// A multi-line array: keep consuming lines until brackets balance
		// outside of strings.
		for !bracketsBalanced(raw) {
			i++
			if i >= len(lines) {
				return nil, tomlErr(lineNo, "unterminated array for key %q", key)
			}
			raw += " " + strings.TrimSpace(stripComment(lines[i]))
		}
		if raw == "" {
			return nil, tomlErr(lineNo, "missing value for key %q", key)
		}
		v, err := parseTOMLValue(raw)
		if err != nil {
			return nil, tomlErr(lineNo, "key %q: %v", key, err)
		}
		if _, dup := cur[key]; dup {
			return nil, tomlErr(lineNo, "duplicate key %q", key)
		}
		cur[key] = v
	}
	return root, nil
}

func tomlErr(line int, format string, args ...any) error {
	return fmt.Errorf("scenario: %w: line %d: %s", core.ErrInvalid, line, fmt.Sprintf(format, args...))
}

func validBareKey(k string) bool {
	if k == "" {
		return false
	}
	for _, r := range k {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-':
		default:
			return false
		}
	}
	return true
}

// stripComment removes a trailing '#' comment, respecting quoted strings.
func stripComment(line string) string {
	inStr := false
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '"':
			if !inStr {
				inStr = true
			} else if i == 0 || line[i-1] != '\\' {
				inStr = false
			}
		case '#':
			if !inStr {
				return line[:i]
			}
		}
	}
	return line
}

// bracketsBalanced reports whether every '[' outside a string has its ']'.
func bracketsBalanced(s string) bool {
	depth := 0
	inStr := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if !inStr {
				inStr = true
			} else if i == 0 || s[i-1] != '\\' {
				inStr = false
			}
		case '[':
			if !inStr {
				depth++
			}
		case ']':
			if !inStr {
				depth--
			}
		}
	}
	return depth == 0
}

func parseTOMLValue(raw string) (any, error) {
	switch {
	case strings.HasPrefix(raw, `"`):
		s, err := strconv.Unquote(raw)
		if err != nil {
			return nil, fmt.Errorf("bad string %s", raw)
		}
		return s, nil
	case strings.HasPrefix(raw, "["):
		if !strings.HasSuffix(raw, "]") {
			return nil, fmt.Errorf("unterminated array %s", raw)
		}
		items, err := splitArray(raw[1 : len(raw)-1])
		if err != nil {
			return nil, err
		}
		out := make([]any, 0, len(items))
		for _, it := range items {
			v, err := parseTOMLValue(it)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		return out, nil
	case raw == "true":
		return true, nil
	case raw == "false":
		return false, nil
	default:
		clean := strings.ReplaceAll(raw, "_", "")
		if n, err := strconv.ParseInt(clean, 10, 64); err == nil {
			return n, nil
		}
		if f, err := strconv.ParseFloat(clean, 64); err == nil {
			return f, nil
		}
		return nil, fmt.Errorf("unrecognized value %q", raw)
	}
}

// splitArray splits a bracketless array body on top-level commas,
// tolerating a trailing comma and nested arrays/strings.
func splitArray(body string) ([]string, error) {
	var items []string
	depth := 0
	inStr := false
	start := 0
	for i := 0; i < len(body); i++ {
		switch body[i] {
		case '"':
			if !inStr {
				inStr = true
			} else if body[i-1] != '\\' {
				inStr = false
			}
		case '[':
			if !inStr {
				depth++
			}
		case ']':
			if !inStr {
				depth--
			}
		case ',':
			if !inStr && depth == 0 {
				items = append(items, strings.TrimSpace(body[start:i]))
				start = i + 1
			}
		}
	}
	if inStr || depth != 0 {
		return nil, fmt.Errorf("malformed array [%s]", body)
	}
	if last := strings.TrimSpace(body[start:]); last != "" {
		items = append(items, last)
	}
	return items, nil
}
