package scenario

import (
	"fmt"
	"os"
	"sort"

	"cbfww/internal/cache"
	"cbfww/internal/core"
	"cbfww/internal/priority"
	"cbfww/internal/storage"
	"cbfww/internal/warehouse"
	"cbfww/internal/workload"
)

// Runner expands a spec and executes every cell. Runs are fully
// deterministic: all randomness flows from the spec seed, all latencies
// are simulation ticks, and no wall-clock value reaches the results — so
// the same spec and binary produce byte-identical JSON, which is what
// makes checked-in baselines possible.
type Runner struct {
	Spec *Spec
	// WorkDir roots the disk-backend cells' temp state; empty uses the
	// OS temp dir. Each cell gets its own subdirectory, removed after
	// the run.
	WorkDir string
	// Progress, when non-nil, is called with each cell ID before it runs.
	Progress func(i, n int, id string)
}

// Run executes the matrix and returns its results, cells in expansion
// order.
func (r *Runner) Run() (*Results, error) {
	cells := r.Spec.Cells()
	res := &Results{Name: r.Spec.Name, Seed: r.Spec.Run.Seed}
	for i, c := range cells {
		if r.Progress != nil {
			r.Progress(i+1, len(cells), c.ID())
		}
		m, err := r.runCell(c)
		if err != nil {
			return nil, fmt.Errorf("scenario: cell %s: %w", c.ID(), err)
		}
		res.Cells = append(res.Cells, CellResult{
			ID:           c.ID(),
			Zipf:         c.Zipf,
			OneTimerMass: c.OneTimerMass,
			Churn:        c.Churn,
			Burst:        c.BurstLabel,
			Shards:       c.Shards,
			Mem:          c.Mem.String(),
			Disk:         c.Disk.String(),
			Backend:      c.Backend,
			Capacity:     c.CapacityLabel,
			Policy:       c.Policy,
			Metrics:      m,
		})
	}
	return res, nil
}

// buildTrace regenerates the cell's world from scratch. Every cell gets
// its own web and trace so nothing leaks between cells; cells sharing
// workload axes get identical traces (same seed, same knobs), which is
// what makes the policy columns comparable.
func (r *Runner) buildTrace(c Cell) (*workload.GeneratedWeb, *workload.Trace, error) {
	run := r.Spec.Run
	clock := core.NewSimClock(0)
	wcfg := workload.DefaultWebConfig()
	wcfg.Sites, wcfg.PagesPerSite, wcfg.Seed = run.Sites, run.PagesPerSite, run.Seed
	g, err := workload.GenerateWeb(clock, wcfg)
	if err != nil {
		return nil, nil, err
	}
	tcfg := workload.DefaultTraceConfig()
	tcfg.Users = run.Users
	tcfg.Sessions = run.Sessions
	tcfg.Length = run.Length
	tcfg.Seed = run.Seed
	tcfg.ZipfS = c.Zipf
	// One-timer mass: deeper walks touch more distinct tail pages exactly
	// once. mass 0 -> follow 0.2 (head-heavy revisits), 1 -> 0.8.
	tcfg.FollowLinkProb = 0.2 + 0.6*c.OneTimerMass
	tcfg.UpdatesPerTick = c.Churn
	tcfg.TopicAffinity = 0.7
	tcfg.Burst = workload.BurstSchedule{Count: c.Burst.Count, Intensity: c.Burst.Intensity}
	tr, err := workload.GenerateTrace(g, clock, tcfg)
	if err != nil {
		return nil, nil, err
	}
	return g, tr, nil
}

func (r *Runner) runCell(c Cell) (map[string]float64, error) {
	g, tr, err := r.buildTrace(c)
	if err != nil {
		return nil, err
	}
	if warehousePolicies[c.Policy] {
		return r.runWarehouseCell(c, g, tr)
	}
	return r.runCacheCell(c, tr)
}

// runWarehouseCell replays the trace through the full warehouse under the
// cell's admission policy and topology.
func (r *Runner) runWarehouseCell(c Cell, g *workload.GeneratedWeb, tr *workload.Trace) (map[string]float64, error) {
	run := r.Spec.Run
	clock := core.NewSimClock(0)
	cfg := warehouse.DefaultConfig()
	cfg.Shards = c.Shards
	cfg.Storage = storage.Config{
		MemCapacity:  c.Mem,
		DiskCapacity: c.Disk,
		MemLatency:   0, DiskLatency: 10, TertiaryLatency: 100,
		SummaryRatio: 0.05,
	}
	switch c.Backend {
	case "disk", "mmap":
		dir, err := os.MkdirTemp(r.WorkDir, "cbfww-scenario-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		cfg.Storage.DataDir = dir
		if c.Backend == "mmap" {
			// The arena-mapped store backs the middle tier; names stay the
			// classic memory/disk/tertiary so every metric key — and hence
			// every baseline comparison — lines up across backends.
			cfg.Storage.Tiers = []storage.TierSpec{
				{Name: "memory", Backend: "heap", Capacity: c.Mem, Latency: cfg.Storage.MemLatency},
				{Name: "disk", Backend: "mmap", Capacity: c.Disk, Latency: cfg.Storage.DiskLatency},
				{Name: "tertiary", Backend: "segment", Capacity: 0, Latency: cfg.Storage.TertiaryLatency},
			}
		}
	}
	switch c.Policy {
	case "newest-top":
		cfg.Priority = priority.Config{
			SimilarityWeight: 0, TopicWeight: 0,
			MinSimilarity: 2, // unattainable: region evidence off
			Default:       1,
			Lambda:        0.3, EpochLength: 3600,
		}
	case "pessimist":
		cfg.Priority = priority.Config{
			SimilarityWeight: 0, TopicWeight: 0,
			MinSimilarity: 2,
			Default:       0,
			Lambda:        0.3, EpochLength: 3600,
		}
	}
	w, err := warehouse.New(cfg, clock, g.Web)
	if err != nil {
		return nil, err
	}
	defer w.Close()

	mgr := w.StorageManager()
	// Snapshot the as-built finite capacities: schedule events scale these
	// bases, so oscillations return to the exact starting targets.
	base := mgr.Tiers()
	events := capacityEvents(c.Capacity, run.Length)
	next := core.Time(run.MaintainEvery)
	lats := make([]float64, 0, len(tr.Log))
	for _, rec := range tr.Log {
		if rec.Time.After(clock.Now()) {
			clock.Set(rec.Time)
		}
		for len(events) > 0 && clock.Now() >= events[0].at {
			targets := make(map[string]core.Bytes, len(base)-1)
			for _, ti := range base[:len(base)-1] {
				targets[ti.Name] = scaleBytes(ti.Capacity, events[0].factor)
			}
			if err := mgr.ResizeTiers(targets); err != nil {
				return nil, err
			}
			events = events[1:]
		}
		for clock.Now() >= next {
			if _, err := w.Maintain(); err != nil {
				return nil, err
			}
			next = next.Add(run.MaintainEvery)
		}
		res, err := w.Get(rec.User, rec.URL)
		if err != nil {
			return nil, err
		}
		lats = append(lats, float64(res.Latency))
	}

	st := w.Stats()
	m := map[string]float64{
		"requests":       float64(st.Requests),
		"hit_ratio":      st.HitRatio(),
		"mem_hit_ratio":  ratio(st.MemoryHits, st.Requests),
		"origin_fetches": float64(st.OriginFetches),
		"stale_serves":   float64(st.StaleServes),
		"latency_mean":   st.MeanLatency(),
	}
	// One moved/demoted pair per live tier-table row, keyed by tier name,
	// so deeper stacks report every level without touching this code.
	for _, ti := range mgr.Tiers() {
		m["bytes_moved_"+ti.Name] = float64(ti.Moved)
		m["bytes_demoted_"+ti.Name] = float64(ti.Demoted)
	}
	addPercentiles(m, lats)
	return m, nil
}

// runCacheCell replays the trace through a bounded (or infinite)
// replacement policy sized to the cell's memory tier — the baselines the
// paper argues against. A Modified record invalidates before access,
// mirroring cache.Run.
func (r *Runner) runCacheCell(c Cell, tr *workload.Trace) (map[string]float64, error) {
	run := r.Spec.Run
	mk, ok := cacheMakers[c.Policy]
	if !ok {
		return nil, fmt.Errorf("%w: policy %q", core.ErrInvalid, c.Policy)
	}
	cc := mk(c.Mem)

	events := capacityEvents(c.Capacity, run.Length)

	var requests, hits, misses int
	var movedMem core.Bytes
	lats := make([]float64, 0, len(tr.Log))
	for _, rec := range tr.Log {
		for len(events) > 0 && rec.Time >= events[0].at {
			if rs, ok := cc.(interface{ Resize(core.Bytes) }); ok {
				rs.Resize(scaleBytes(c.Mem, events[0].factor))
			}
			events = events[1:]
		}
		requests++
		before := cc.Used()
		hit := cc.Access(rec.URL, rec.Bytes, rec.Time)
		if rec.Modified {
			// The origin changed under the cached copy: the access above
			// refreshed bookkeeping, but serving it is a miss.
			hit = false
		}
		if after := cc.Used(); after > before {
			movedMem += after - before
		}
		if hit {
			hits++
			lats = append(lats, 0)
		} else {
			misses++
			lats = append(lats, float64(run.OriginLatency))
		}
	}

	m := map[string]float64{
		"requests":             float64(requests),
		"hit_ratio":            ratio(hits, requests),
		"mem_hit_ratio":        ratio(hits, requests),
		"origin_fetches":       float64(misses),
		"stale_serves":         0,
		"latency_mean":         meanOf(lats),
		"bytes_moved_memory":   float64(movedMem),
		"bytes_moved_disk":     0,
		"bytes_moved_tertiary": 0,
	}
	addPercentiles(m, lats)
	return m, nil
}

var cacheMakers = map[string]func(core.Bytes) cache.Cache{
	"lru":      cache.NewLRU,
	"mru":      cache.NewMRU,
	"fifo":     cache.NewFIFO,
	"lfu":      cache.NewLFU,
	"mfu":      cache.NewMFU,
	"gdsf":     cache.NewGDSF,
	"size":     cache.NewSize,
	"lru2":     func(b core.Bytes) cache.Cache { return cache.NewLRUK(b, 2) },
	"infinite": func(core.Bytes) cache.Cache { return cache.NewInfinite() },
}

// capacityEvent is one scheduled retarget: at tick at, scale the cell's
// as-built capacities by factor.
type capacityEvent struct {
	at     core.Time
	factor float64
}

// capacityEvents expands a parsed capacity schedule over a trace of the
// given length. Shrink and grow fire once at the At fraction; oscillate
// fires at every multiple of At, alternating the factor with a return to
// the original targets.
func capacityEvents(cs CapacitySpec, length core.Duration) []capacityEvent {
	if cs.Static() {
		return nil
	}
	if cs.Mode != "oscillate" {
		return []capacityEvent{{core.Time(float64(length) * cs.At), cs.Factor}}
	}
	var evs []capacityEvent
	factor := cs.Factor
	for frac := cs.At; frac < 1; frac += cs.At {
		evs = append(evs, capacityEvent{core.Time(float64(length) * frac), factor})
		if factor == cs.Factor {
			factor = 1
		} else {
			factor = cs.Factor
		}
	}
	return evs
}

func scaleBytes(b core.Bytes, factor float64) core.Bytes {
	s := core.Bytes(float64(b) * factor)
	if s < 1 {
		s = 1
	}
	return s
}

func ratio(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

func meanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// addPercentiles records the nearest-rank latency percentiles.
func addPercentiles(m map[string]float64, lats []float64) {
	sorted := append([]float64(nil), lats...)
	sort.Float64s(sorted)
	pick := func(p float64) float64 {
		if len(sorted) == 0 {
			return 0
		}
		i := int(p*float64(len(sorted))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return sorted[i]
	}
	m["latency_p50"] = pick(0.50)
	m["latency_p90"] = pick(0.90)
	m["latency_p99"] = pick(0.99)
}
