package scenario

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestTableGolden pins the rendering of a 2 (zipf) x 2 (capacity) x 2
// (policy) matrix so table-format drift shows up in review, not in diffs
// of bench_tables.txt after the fact.
func TestTableGolden(t *testing.T) {
	res := &Results{Name: "golden", Seed: 42}
	for _, zipf := range []float64{0.7, 1.1} {
		for _, capSched := range []string{"static", "shrink@0.5x0.25"} {
			for _, pol := range []string{"paper", "lru"} {
				// Synthetic but shaped like real output: metrics vary with
				// the coordinates so every column exercises its formatting.
				k := zipf + float64(len(capSched))/100 + float64(len(pol))/1000
				res.Cells = append(res.Cells, CellResult{
					ID:   "synthetic",
					Zipf: zipf, OneTimerMass: 0.5, Churn: 0.001, Burst: "none",
					Shards: 2, Mem: "2.0MB", Disk: "64.0MB", Backend: "heap",
					Capacity: capSched, Policy: pol,
					Metrics: map[string]float64{
						"requests":             1000,
						"hit_ratio":            0.5 * k / 2,
						"mem_hit_ratio":        0.3 * k / 2,
						"origin_fetches":       500 * k,
						"stale_serves":         3,
						"latency_mean":         40 * k,
						"latency_p50":          10 * k,
						"latency_p90":          100 * k,
						"latency_p99":          200 * k,
						"bytes_moved_memory":   2e6 * k,
						"bytes_moved_disk":     8e6 * k,
						"bytes_moved_tertiary": 1e6 * k,
					},
				})
			}
		}
	}
	got := res.Table().String()

	path := filepath.Join("testdata", "table_2x2x2.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if got != string(want) {
		t.Errorf("table drifted from golden (run with -update to accept):\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
