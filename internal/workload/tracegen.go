package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"cbfww/internal/core"
	"cbfww/internal/logmine"
	"cbfww/internal/simweb"
)

// Event is a short-lived hot spot, the phenomenon §4.4 observed in the
// Kyoto-inet data: "Hot spot data is very much influenced by the hot topics
// in news papers/TV or local events. The lifetime is very short."
type Event struct {
	// Start / Length bound the request surge.
	Start  core.Time
	Length core.Duration
	// Topic is the topic whose pages get hot.
	Topic int
	// Intensity is the fraction of request traffic redirected to the event
	// topic while the event is live.
	Intensity float64
	// Headline is published to the news feed Lead ticks before Start —
	// the early signal the Topic Sensor can exploit.
	Headline string
	Lead     core.Duration
}

// BurstSchedule is the declarative form of a hot-spot event series: Count
// bursts spread evenly over the trace window, each redirecting Intensity
// of the traffic to a rotating topic for Length ticks. It expands into
// Events, so a scenario spec can say "two bursts at 0.8 intensity"
// without hand-placing timestamps. The zero value schedules nothing.
type BurstSchedule struct {
	// Count is the number of bursts; 0 disables the schedule.
	Count int
	// Length is the per-burst duration; 0 defaults to 5% of the trace.
	Length core.Duration
	// Intensity is the traffic fraction redirected while a burst is live.
	Intensity float64
	// FirstTopic is where the topic rotation starts (burst i hits topic
	// FirstTopic+i, wrapped by the generator at use time).
	FirstTopic int
}

// Expand materializes the schedule into concrete Events over a trace of
// the given start and length. Burst midpoints sit at the (i+1)/(Count+1)
// fractions of the window, so a single burst lands mid-trace.
func (b BurstSchedule) Expand(start core.Time, length core.Duration) []Event {
	if b.Count <= 0 || b.Intensity <= 0 || length <= 0 {
		return nil
	}
	bl := b.Length
	if bl <= 0 {
		bl = length / 20
	}
	if bl < 1 {
		bl = 1
	}
	evs := make([]Event, 0, b.Count)
	for i := 0; i < b.Count; i++ {
		mid := start.Add(core.Duration(int64(length) * int64(i+1) / int64(b.Count+1)))
		evs = append(evs, Event{
			Start:     mid.Add(-bl / 2),
			Length:    bl,
			Topic:     b.FirstTopic + i,
			Intensity: b.Intensity,
			Headline:  fmt.Sprintf("burst %d topic %d", i+1, b.FirstTopic+i),
		})
	}
	return evs
}

// TraceConfig shapes a generated access trace.
type TraceConfig struct {
	// Users is the client population size.
	Users int
	// Sessions is the number of navigation sessions to generate.
	Sessions int
	// Start and Length bound the trace on the timeline.
	Start  core.Time
	Length core.Duration
	// ZipfS is the popularity skew over entry pages. Around 0.9 with
	// Sessions ≈ pages yields the paper's ~60% one-timer regime.
	ZipfS float64
	// FollowLinkProb is the chance of continuing the walk at each step.
	FollowLinkProb float64
	// MaxWalk bounds session length in pages.
	MaxWalk int
	// ThinkTimeMax is the maximum gap between steps within a session.
	ThinkTimeMax core.Duration
	// UpdatesPerTick is the expected number of page updates per tick
	// (content churn; drives the "modified or replaced" part of the
	// one-timer definition).
	UpdatesPerTick float64
	// TopicAffinity in [0, 1] correlates popularity with topics: at 1,
	// popularity ranks are assigned in topic blocks so the Zipf head
	// concentrates in a few hot topics — the paper's premise that "hot
	// spot data is very much influenced by the hot topics"; at 0, ranks
	// are independent of topics.
	TopicAffinity float64
	// Events are the hot-spot surges.
	Events []Event
	// Burst declaratively adds evenly spaced surges on top of Events (the
	// scenario matrix's burst-schedule axis).
	Burst BurstSchedule
	// Seed drives all randomness.
	Seed int64
}

// DefaultTraceConfig covers the generated web of DefaultWebConfig with a
// month-like trace (1 tick = 1 second).
func DefaultTraceConfig() TraceConfig {
	return TraceConfig{
		Users:          200,
		Sessions:       2000,
		Start:          0,
		Length:         30 * 24 * 3600,
		ZipfS:          0.9,
		FollowLinkProb: 0.55,
		MaxWalk:        8,
		ThinkTimeMax:   30,
		UpdatesPerTick: 0.001,
		Seed:           1,
	}
}

// Trace is a generated access trace plus its side products.
type Trace struct {
	// Log is the access log, sorted by time.
	Log logmine.Log
	// News carries the event headlines for the Topic Sensor.
	News *simweb.NewsFeed
	// Updates counts content updates applied to the web during generation.
	Updates int
}

// GenerateTrace simulates cfg.Sessions navigation sessions over the
// generated web and returns the access log. The web's pages are mutated
// (content updates) as a side effect, exactly as the live web would churn
// under a real trace. The web's clock must be a *core.SimClock; the
// generator drives it forward and leaves it at the trace end.
func GenerateTrace(g *GeneratedWeb, clock *core.SimClock, cfg TraceConfig) (*Trace, error) {
	if cfg.Users < 1 || cfg.Sessions < 1 || cfg.Length <= 0 {
		return nil, fmt.Errorf("workload: %w: users, sessions and length must be positive", core.ErrInvalid)
	}
	if cfg.MaxWalk < 1 {
		cfg.MaxWalk = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	zipf := NewZipf(rng, len(g.PageURLs), cfg.ZipfS)
	perm := popularityOrder(rng, g, cfg.TopicAffinity)

	// Group pages by topic for event targeting.
	byTopic := make(map[int][]string)
	for url, t := range g.TopicOf {
		byTopic[t] = append(byTopic[t], url)
	}
	for _, urls := range byTopic {
		sortStrings(urls)
	}

	events := cfg.Events
	if bursts := cfg.Burst.Expand(cfg.Start, cfg.Length); len(bursts) > 0 {
		events = append(append([]Event{}, cfg.Events...), bursts...)
	}

	news := simweb.NewNewsFeed("simnews")
	for _, ev := range events {
		news.Publish(simweb.Article{
			Time:     ev.Start.Add(-ev.Lead),
			Headline: ev.Headline,
		})
	}

	// Session start times: uniform over the trace window, sorted.
	starts := make([]core.Time, cfg.Sessions)
	for i := range starts {
		starts[i] = cfg.Start.Add(core.Duration(rng.Int63n(int64(cfg.Length))))
	}
	sortTimes(starts)

	tr := &Trace{News: news}
	lastVersion := make(map[string]int)
	var updateDebt float64
	prevTime := cfg.Start

	for i, at := range starts {
		// Apply content churn accumulated since the previous session.
		updateDebt += float64(at.Sub(prevTime)) * cfg.UpdatesPerTick
		for updateDebt >= 1 {
			updateDebt--
			url := g.PageURLs[rng.Intn(len(g.PageURLs))]
			topic := g.TopicOf[url]
			clock.Set(maxTime(clock.Now(), at))
			if err := g.Web.Update(url, g.Vocab.Sentence(rng, topic, 4, 0)); err != nil {
				return nil, err
			}
			tr.Updates++
		}
		prevTime = at

		user := fmt.Sprintf("user%03d", rng.Intn(cfg.Users))
		entry := g.PageURLs[perm[zipf.Sample()]]
		// During an event, traffic is redirected to the event topic.
		for _, ev := range events {
			if at >= ev.Start && at.Before(ev.Start.Add(ev.Length)) && rng.Float64() < ev.Intensity {
				urls := byTopic[ev.Topic%len(g.Vocab.Topics)]
				if len(urls) > 0 {
					entry = urls[rng.Intn(len(urls))]
				}
				break
			}
		}

		// Random walk from the entry page.
		t := at
		url := entry
		referrer := ""
		for step := 0; step < cfg.MaxWalk; step++ {
			page, ok := g.Web.Lookup(url)
			if !ok {
				break
			}
			clock.Set(maxTime(clock.Now(), t))
			rec := logmine.Record{
				Time:     t,
				User:     user,
				URL:      url,
				Referrer: referrer,
				Status:   200,
				Bytes:    page.Size,
			}
			if prev, seen := lastVersion[url]; seen && prev != page.Version {
				rec.Modified = true
			}
			lastVersion[url] = page.Version
			tr.Log = append(tr.Log, rec)

			if len(page.Anchors) == 0 || rng.Float64() >= cfg.FollowLinkProb {
				break
			}
			referrer = url
			url = page.Anchors[rng.Intn(len(page.Anchors))].Target
			if cfg.ThinkTimeMax > 0 {
				t = t.Add(1 + core.Duration(rng.Int63n(int64(cfg.ThinkTimeMax))))
			} else {
				t = t.Add(1)
			}
		}
		_ = i
	}
	tr.Log.Sort()
	if end := cfg.Start.Add(cfg.Length); clock.Now().Before(end) {
		clock.Set(end)
	}
	return tr, nil
}

// popularityOrder maps Zipf ranks to page indices. With zero affinity the
// mapping is a uniform random permutation; with affinity 1 pages are
// ordered in topic blocks (a randomly chosen hot-topic order, shuffled
// within each topic) so popularity concentrates topically. Intermediate
// affinities interpolate by partially re-shuffling the blocked order.
func popularityOrder(rng *rand.Rand, g *GeneratedWeb, affinity float64) []int {
	n := len(g.PageURLs)
	if affinity <= 0 {
		return Permutation(rng, n)
	}
	if affinity > 1 {
		affinity = 1
	}
	// Blocked order: topics in random order, pages shuffled within topic.
	topics := len(g.Vocab.Topics)
	topicOrder := rng.Perm(topics)
	topicRank := make([]int, topics)
	for r, t := range topicOrder {
		topicRank[t] = r
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	rng.Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	sort.SliceStable(idx, func(a, b int) bool {
		ta := topicRank[g.TopicOf[g.PageURLs[idx[a]]]]
		tb := topicRank[g.TopicOf[g.PageURLs[idx[b]]]]
		return ta < tb
	})
	// Degrade toward random with (1-affinity)·n swaps.
	swaps := int(float64(n) * (1 - affinity))
	for s := 0; s < swaps; s++ {
		i, j := rng.Intn(n), rng.Intn(n)
		idx[i], idx[j] = idx[j], idx[i]
	}
	return idx
}

func maxTime(a, b core.Time) core.Time {
	if a.After(b) {
		return a
	}
	return b
}

func sortTimes(ts []core.Time) {
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
}

func sortStrings(ss []string) { sort.Strings(ss) }
