// Package workload generates the synthetic equivalents of everything the
// paper measured on private data: a topic-structured web corpus (standing
// in for the live web), and Kyoto-inet-like access traces with Zipf
// popularity, a heavy one-time-access tail, short-lived hot-spot events and
// content updates. All generators are deterministic given a seed.
package workload

import (
	"math"
	"math/rand"
	"sort"
)

// Zipf samples ranks 0..n-1 with probability proportional to 1/(rank+1)^s.
// Unlike math/rand's Zipf it supports any s > 0 (including s <= 1) and
// samples by inverse-CDF lookup, which keeps it exact and fast for the
// corpus sizes used here (up to a few million ranks).
type Zipf struct {
	rng *rand.Rand
	cdf []float64
}

// NewZipf builds a sampler over n ranks with skew s. It panics when n < 1
// or s < 0 (s = 0 degenerates to uniform, which is allowed and useful).
func NewZipf(rng *rand.Rand, n int, s float64) *Zipf {
	if n < 1 {
		panic("workload: Zipf needs n >= 1")
	}
	if s < 0 {
		panic("workload: Zipf needs s >= 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	inv := 1 / sum
	for i := range cdf {
		cdf[i] *= inv
	}
	cdf[n-1] = 1 // guard against rounding
	return &Zipf{rng: rng, cdf: cdf}
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// Sample draws one rank in [0, N).
func (z *Zipf) Sample() int {
	u := z.rng.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// Prob returns the probability mass of the given rank.
func (z *Zipf) Prob(rank int) float64 {
	if rank < 0 || rank >= len(z.cdf) {
		return 0
	}
	if rank == 0 {
		return z.cdf[0]
	}
	return z.cdf[rank] - z.cdf[rank-1]
}

// Permutation returns a deterministic pseudo-random permutation of 0..n-1
// drawn from rng, used to scatter popularity ranks over page IDs so that
// popular pages are not clustered by construction.
func Permutation(rng *rand.Rand, n int) []int {
	return rng.Perm(n)
}
