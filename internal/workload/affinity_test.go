package workload

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"cbfww/internal/core"
)

// topicConcentration measures the Herfindahl index of traffic over
// topics: 1/topics for uniform spread, approaching 1 when one topic owns
// all traffic.
func topicConcentration(g *GeneratedWeb, tr *Trace) float64 {
	counts := make(map[int]int)
	total := 0
	for _, r := range tr.Log {
		counts[g.TopicOf[r.URL]]++
		total++
	}
	var h float64
	for _, c := range counts {
		p := float64(c) / float64(total)
		h += p * p
	}
	return h
}

func genWithAffinity(t *testing.T, affinity float64) (*GeneratedWeb, *Trace) {
	t.Helper()
	clock := core.NewSimClock(0)
	wcfg := DefaultWebConfig()
	wcfg.Sites, wcfg.PagesPerSite = 10, 40
	g, err := GenerateWeb(clock, wcfg)
	if err != nil {
		t.Fatal(err)
	}
	tcfg := DefaultTraceConfig()
	tcfg.Sessions = 1500
	tcfg.Length = 100_000
	tcfg.ZipfS = 1.0
	tcfg.TopicAffinity = affinity
	tcfg.FollowLinkProb = 0 // entries only: pure popularity signal
	tr, err := GenerateTrace(g, clock, tcfg)
	if err != nil {
		t.Fatal(err)
	}
	return g, tr
}

func TestTopicAffinityConcentratesTraffic(t *testing.T) {
	_, tr0 := genWithAffinity(t, 0)
	g0, _ := genWithAffinity(t, 0)
	_ = g0
	gA, trA := genWithAffinity(t, 1)
	g, _ := genWithAffinity(t, 0)
	c0 := topicConcentration(g, tr0)
	cA := topicConcentration(gA, trA)
	if cA <= c0*1.5 {
		t.Errorf("affinity did not concentrate traffic: H(0)=%v H(1)=%v", c0, cA)
	}
}

func TestPopularityOrderIsPermutation(t *testing.T) {
	for _, affinity := range []float64{0, 0.5, 1} {
		g, _ := genWithAffinity(t, affinity)
		rng := rand.New(rand.NewSource(7))
		perm := popularityOrder(rng, g, affinity)
		if len(perm) != len(g.PageURLs) {
			t.Fatalf("affinity %v: perm length %d", affinity, len(perm))
		}
		sorted := append([]int(nil), perm...)
		sort.Ints(sorted)
		for i, v := range sorted {
			if v != i {
				t.Fatalf("affinity %v: not a permutation at %d: %d", affinity, i, v)
			}
		}
	}
}

func TestPopularityOrderBlockedAtFullAffinity(t *testing.T) {
	g, _ := genWithAffinity(t, 1)
	rng := rand.New(rand.NewSource(3))
	perm := popularityOrder(rng, g, 1)
	// With affinity 1, topics appear in contiguous blocks: count topic
	// switches along the rank order; it must be close to the number of
	// topics, far below a random permutation's switches.
	switches := 0
	for i := 1; i < len(perm); i++ {
		a := g.TopicOf[g.PageURLs[perm[i-1]]]
		b := g.TopicOf[g.PageURLs[perm[i]]]
		if a != b {
			switches++
		}
	}
	topics := len(g.Vocab.Topics)
	if switches > topics*2 {
		t.Errorf("blocked order has %d topic switches for %d topics", switches, topics)
	}
	if math.IsNaN(float64(switches)) {
		t.Fatal("unreachable")
	}
}
