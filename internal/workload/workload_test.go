package workload

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"cbfww/internal/core"
	"cbfww/internal/logmine"
	"cbfww/internal/text"
)

func TestZipfDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	z := NewZipf(rng, 100, 1.0)
	if z.N() != 100 {
		t.Fatalf("N = %d", z.N())
	}
	counts := make([]int, 100)
	const draws = 100000
	for i := 0; i < draws; i++ {
		r := z.Sample()
		if r < 0 || r >= 100 {
			t.Fatalf("Sample out of range: %d", r)
		}
		counts[r]++
	}
	// Rank 0 should get roughly 1/H(100) ≈ 19% of mass.
	p0 := float64(counts[0]) / draws
	if p0 < 0.15 || p0 > 0.24 {
		t.Errorf("rank-0 mass = %v, want ~0.19", p0)
	}
	// Monotone-ish head: rank 0 clearly above rank 10.
	if counts[0] <= counts[10] {
		t.Errorf("head not dominant: c0=%d c10=%d", counts[0], counts[10])
	}
}

func TestZipfProbSumsToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	z := NewZipf(rng, 50, 0.8)
	sum := 0.0
	for i := 0; i < 50; i++ {
		sum += z.Prob(i)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probabilities sum to %v", sum)
	}
	if z.Prob(-1) != 0 || z.Prob(50) != 0 {
		t.Error("out-of-range Prob != 0")
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	z := NewZipf(rng, 10, 0)
	for i := 0; i < 10; i++ {
		if math.Abs(z.Prob(i)-0.1) > 1e-9 {
			t.Errorf("Prob(%d) = %v, want 0.1", i, z.Prob(i))
		}
	}
}

func TestZipfPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, f := range []func(){
		func() { NewZipf(rng, 0, 1) },
		func() { NewZipf(rng, 10, -1) },
	} {
		f := f
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			f()
		}()
	}
}

func TestVocabularyDisjointTopics(t *testing.T) {
	v := NewVocabulary(5, 20, 10)
	seen := make(map[string]int)
	for ti, words := range v.Topics {
		if len(words) != 20 {
			t.Fatalf("topic %d has %d words", ti, len(words))
		}
		for _, w := range words {
			if prev, dup := seen[w]; dup {
				t.Errorf("word %q in topics %d and %d", w, prev, ti)
			}
			seen[w] = ti
		}
	}
	for _, w := range v.Shared {
		if _, dup := seen[w]; dup {
			t.Errorf("shared word %q also topical", w)
		}
	}
	if len(v.Shared) != 10 {
		t.Errorf("shared size = %d", len(v.Shared))
	}
}

func TestVocabularySyntheticExtension(t *testing.T) {
	// Demand more words than the base pool provides.
	v := NewVocabulary(40, 24, 24)
	total := make(map[string]bool)
	for _, ws := range v.Topics {
		for _, w := range ws {
			total[w] = true
		}
	}
	if len(total) != 40*24 {
		t.Errorf("got %d distinct words, want %d", len(total), 40*24)
	}
	// Synthetic words must survive stemming unchanged enough to stay unique.
	stems := make(map[string]bool)
	for w := range total {
		stems[text.Stem(w)] = true
	}
	if len(stems) < len(total)*9/10 {
		t.Errorf("stemming collapsed vocabulary: %d stems for %d words", len(stems), len(total))
	}
}

func TestSentenceShape(t *testing.T) {
	v := NewVocabulary(3, 20, 10)
	rng := rand.New(rand.NewSource(3))
	s := v.Sentence(rng, 1, 12, 0.2)
	if s == "" {
		t.Fatal("empty sentence")
	}
	words := strings.Fields(s)
	if len(words) < 12 {
		t.Errorf("sentence too short: %q", s)
	}
	// With sharedProb 0, all content words come from the topic vocabulary.
	s0 := v.Sentence(rng, 2, 8, 0)
	topicSet := make(map[string]bool)
	for _, w := range v.Topics[2] {
		topicSet[w] = true
	}
	for _, w := range strings.Fields(s0) {
		if !topicSet[w] && !isConnective(w) {
			t.Errorf("off-topic word %q in %q", w, s0)
		}
	}
}

func isConnective(w string) bool {
	for _, c := range connectives {
		if c == w {
			return true
		}
	}
	return false
}

func TestGenerateWebShape(t *testing.T) {
	clock := core.NewSimClock(0)
	cfg := DefaultWebConfig()
	cfg.Sites, cfg.PagesPerSite = 5, 10
	g, err := GenerateWeb(clock, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g.Web.NumPages() != 50 {
		t.Fatalf("NumPages = %d", g.Web.NumPages())
	}
	if len(g.PageURLs) != 50 {
		t.Fatalf("PageURLs = %d", len(g.PageURLs))
	}
	hasLinks, hasMedia := false, false
	for _, url := range g.PageURLs {
		p, ok := g.Web.Lookup(url)
		if !ok {
			t.Fatalf("missing page %q", url)
		}
		if p.Title == "" || p.Body == "" {
			t.Errorf("page %q has empty content", url)
		}
		if p.Topic != g.TopicOf[url] {
			t.Errorf("topic mismatch for %q", url)
		}
		if len(p.Anchors) > 0 {
			hasLinks = true
			for _, a := range p.Anchors {
				if _, ok := g.Web.Lookup(a.Target); !ok {
					t.Errorf("dangling link %q -> %q", url, a.Target)
				}
				if a.Text == "" {
					t.Errorf("empty anchor text on %q", url)
				}
			}
		}
		if len(p.Components) > 0 {
			hasMedia = true
		}
	}
	if !hasLinks {
		t.Error("no page has links")
	}
	if !hasMedia {
		t.Error("no page has media")
	}
}

func TestGenerateWebDeterministic(t *testing.T) {
	cfg := DefaultWebConfig()
	cfg.Sites, cfg.PagesPerSite = 3, 5
	g1, err1 := GenerateWeb(core.NewSimClock(0), cfg)
	g2, err2 := GenerateWeb(core.NewSimClock(0), cfg)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	for i, url := range g1.PageURLs {
		if g2.PageURLs[i] != url {
			t.Fatalf("URL order differs at %d", i)
		}
		p1, _ := g1.Web.Lookup(url)
		p2, _ := g2.Web.Lookup(url)
		if p1.Title != p2.Title || p1.Body != p2.Body || p1.Size != p2.Size {
			t.Fatalf("content differs for %q", url)
		}
	}
}

func TestGenerateWebRejectsBadConfig(t *testing.T) {
	if _, err := GenerateWeb(core.NewSimClock(0), WebConfig{}); err == nil {
		t.Error("zero config accepted")
	}
}

func genSmallTrace(t *testing.T, cfg TraceConfig) (*GeneratedWeb, *Trace) {
	t.Helper()
	clock := core.NewSimClock(0)
	wcfg := DefaultWebConfig()
	wcfg.Sites, wcfg.PagesPerSite = 5, 20
	g, err := GenerateWeb(clock, wcfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := GenerateTrace(g, clock, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g, tr
}

func TestGenerateTraceBasics(t *testing.T) {
	cfg := DefaultTraceConfig()
	cfg.Sessions = 300
	cfg.Length = 10000
	_, tr := genSmallTrace(t, cfg)
	if len(tr.Log) < cfg.Sessions {
		t.Fatalf("log too short: %d records", len(tr.Log))
	}
	// Sorted by time.
	for i := 1; i < len(tr.Log); i++ {
		if tr.Log[i].Time < tr.Log[i-1].Time {
			t.Fatal("log not sorted")
		}
	}
	first, last, _ := tr.Log.Span()
	if first < 0 || last > 10000+core.Time(cfg.MaxWalk)*core.Time(cfg.ThinkTimeMax) {
		t.Errorf("span [%v, %v] outside window", first, last)
	}
	if tr.Updates == 0 {
		t.Error("no content updates generated")
	}
	// Some record must carry the Modified flag (updates + re-access).
	modified := false
	for _, r := range tr.Log {
		if r.Modified {
			modified = true
			break
		}
	}
	if !modified {
		t.Error("no Modified record in trace")
	}
}

func TestGenerateTraceDeterministic(t *testing.T) {
	cfg := DefaultTraceConfig()
	cfg.Sessions = 100
	cfg.Length = 5000
	_, tr1 := genSmallTrace(t, cfg)
	_, tr2 := genSmallTrace(t, cfg)
	if len(tr1.Log) != len(tr2.Log) {
		t.Fatalf("lengths differ: %d vs %d", len(tr1.Log), len(tr2.Log))
	}
	for i := range tr1.Log {
		if tr1.Log[i] != tr2.Log[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, tr1.Log[i], tr2.Log[i])
		}
	}
}

func TestGenerateTraceEventCreatesHotSpot(t *testing.T) {
	cfg := DefaultTraceConfig()
	cfg.Sessions = 1000
	cfg.Length = 20000
	cfg.Events = []Event{{
		Start: 10000, Length: 2000, Topic: 3, Intensity: 0.9,
		Headline: "festival tonight", Lead: 500,
	}}
	g, tr := genSmallTrace(t, cfg)
	if tr.News.Len() != 1 {
		t.Fatalf("news feed has %d articles", tr.News.Len())
	}
	arts := tr.News.Since(core.TimeNever, 10000)
	if len(arts) != 1 || arts[0].Time != 9500 {
		t.Fatalf("article = %+v", arts)
	}
	// During the event window, topic-3 share of entry traffic should jump.
	inEvent, inEventTopic, outEvent, outEventTopic := 0, 0, 0, 0
	for _, r := range tr.Log {
		topical := g.TopicOf[r.URL] == 3
		if r.Time >= 10000 && r.Time < 12000 {
			inEvent++
			if topical {
				inEventTopic++
			}
		} else {
			outEvent++
			if topical {
				outEventTopic++
			}
		}
	}
	if inEvent == 0 || outEvent == 0 {
		t.Fatalf("no traffic in/out of event window: %d/%d", inEvent, outEvent)
	}
	inShare := float64(inEventTopic) / float64(inEvent)
	outShare := float64(outEventTopic) / float64(outEvent)
	if inShare < outShare*2 {
		t.Errorf("event did not concentrate traffic: in=%.2f out=%.2f", inShare, outShare)
	}
}

// The headline statistic: with Zipf skew and content churn over a large
// page population, well over half of referenced pages are one-timers.
func TestOneTimerRegime(t *testing.T) {
	clock := core.NewSimClock(0)
	wcfg := DefaultWebConfig()
	wcfg.Sites, wcfg.PagesPerSite = 20, 100 // 2000 pages
	g, err := GenerateWeb(clock, wcfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultTraceConfig()
	cfg.Sessions = 1200
	cfg.Length = 200000
	cfg.FollowLinkProb = 0.4
	tr, err := GenerateTrace(g, clock, cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats := logmine.AnalyzeReuse(tr.Log)
	ratio := stats.OneTimerRatio()
	if ratio < 0.5 {
		t.Errorf("one-timer ratio = %.2f, want the paper's >0.5 regime (objects=%d oneTimers=%d)",
			ratio, stats.Objects, stats.OneTimers)
	}
}

// Property: generated traces always reference existing pages.
func TestTraceURLsExist(t *testing.T) {
	f := func(seed int64) bool {
		clock := core.NewSimClock(0)
		wcfg := DefaultWebConfig()
		wcfg.Sites, wcfg.PagesPerSite, wcfg.Seed = 3, 8, seed
		g, err := GenerateWeb(clock, wcfg)
		if err != nil {
			return false
		}
		cfg := DefaultTraceConfig()
		cfg.Sessions, cfg.Length, cfg.Seed = 50, 2000, seed
		tr, err := GenerateTrace(g, clock, cfg)
		if err != nil {
			return false
		}
		for _, r := range tr.Log {
			if _, ok := g.Web.Lookup(r.URL); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
