package workload

import (
	"fmt"
	"math/rand"

	"cbfww/internal/core"
	"cbfww/internal/simweb"
)

// WebConfig shapes the generated synthetic web.
type WebConfig struct {
	// Sites is the number of origin hosts.
	Sites int
	// PagesPerSite is the number of pages on each host.
	PagesPerSite int
	// Topics is the number of ground-truth topics; each site is assigned a
	// home topic and most of its pages belong to it.
	Topics int
	// OffTopicProb is the chance a page belongs to a random topic instead
	// of its site's home topic.
	OffTopicProb float64
	// TitleTerms / BodyTerms are the content-word counts per page.
	TitleTerms, BodyTerms int
	// LinksPerPage is the mean number of outgoing anchors.
	LinksPerPage int
	// CrossSiteLinkProb is the chance a link targets another site.
	CrossSiteLinkProb float64
	// MediaProb is the chance a page embeds media components; MediaPerPage
	// the count when it does. Components are drawn from a per-site shared
	// pool so several pages share them (Figure 2's situation).
	MediaProb    float64
	MediaPerPage int
	// PageSizeMin/Max bound container sizes; MediaSizeMin/Max component
	// sizes.
	PageSizeMin, PageSizeMax   core.Bytes
	MediaSizeMin, MediaSizeMax core.Bytes
	// LatencyMin/Max bound per-site origin fetch latency.
	LatencyMin, LatencyMax core.Duration
	// Seed drives all randomness.
	Seed int64
}

// DefaultWebConfig returns a small but structured web: 20 sites x 50
// pages, 10 topics.
func DefaultWebConfig() WebConfig {
	return WebConfig{
		Sites:             20,
		PagesPerSite:      50,
		Topics:            10,
		OffTopicProb:      0.15,
		TitleTerms:        4,
		BodyTerms:         60,
		LinksPerPage:      5,
		CrossSiteLinkProb: 0.2,
		MediaProb:         0.4,
		MediaPerPage:      2,
		PageSizeMin:       2 * core.KB,
		PageSizeMax:       64 * core.KB,
		MediaSizeMin:      8 * core.KB,
		MediaSizeMax:      512 * core.KB,
		LatencyMin:        50,
		LatencyMax:        400,
		Seed:              1,
	}
}

// GeneratedWeb bundles the synthetic web with its generation metadata.
type GeneratedWeb struct {
	Web *simweb.Web
	// Vocab is the vocabulary used, for query and event generation.
	Vocab *Vocabulary
	// PageURLs lists container page URLs in generation order; rank
	// permutations index into this slice.
	PageURLs []string
	// TopicOf maps page URL to ground-truth topic.
	TopicOf map[string]int
	// Config echoes the generating configuration.
	Config WebConfig
	rng    *rand.Rand
}

// GenerateWeb builds a synthetic web per cfg on the given clock.
func GenerateWeb(clock core.Clock, cfg WebConfig) (*GeneratedWeb, error) {
	if cfg.Sites < 1 || cfg.PagesPerSite < 1 || cfg.Topics < 1 {
		return nil, fmt.Errorf("workload: %w: need sites, pages and topics >= 1", core.ErrInvalid)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	vocab := NewVocabulary(cfg.Topics, 24, 24)
	web := simweb.NewWeb(clock)
	g := &GeneratedWeb{
		Web:     web,
		Vocab:   vocab,
		TopicOf: make(map[string]int),
		Config:  cfg,
		rng:     rng,
	}

	type sitePages struct {
		host  string
		urls  []string
		media []simweb.Component
	}
	sites := make([]sitePages, cfg.Sites)
	for s := 0; s < cfg.Sites; s++ {
		host := fmt.Sprintf("site%02d.example", s)
		lat := cfg.LatencyMin
		if cfg.LatencyMax > cfg.LatencyMin {
			lat += core.Duration(rng.Int63n(int64(cfg.LatencyMax - cfg.LatencyMin)))
		}
		web.AddSite(host, lat)
		sites[s].host = host
		// Per-site shared media pool: half as many components as pages, so
		// sharing is common.
		nMedia := cfg.PagesPerSite/2 + 1
		for m := 0; m < nMedia; m++ {
			sites[s].media = append(sites[s].media, simweb.Component{
				URL:  fmt.Sprintf("http://%s/media/m%03d.png", host, m),
				Size: sizeBetween(rng, cfg.MediaSizeMin, cfg.MediaSizeMax),
			})
		}
		for p := 0; p < cfg.PagesPerSite; p++ {
			sites[s].urls = append(sites[s].urls, fmt.Sprintf("http://%s/p%04d.html", host, p))
		}
	}

	// Create pages with content; links are wired in a second pass so they
	// can target any existing page.
	for s := range sites {
		homeTopic := s % cfg.Topics
		for _, url := range sites[s].urls {
			topic := homeTopic
			if rng.Float64() < cfg.OffTopicProb {
				topic = rng.Intn(cfg.Topics)
			}
			page := &simweb.Page{
				URL:   url,
				Title: vocab.Sentence(rng, topic, cfg.TitleTerms, 0),
				Body:  vocab.Sentence(rng, topic, cfg.BodyTerms, 0.2),
				Topic: topic,
				Size:  sizeBetween(rng, cfg.PageSizeMin, cfg.PageSizeMax),
			}
			if rng.Float64() < cfg.MediaProb {
				for m := 0; m < cfg.MediaPerPage; m++ {
					c := sites[s].media[rng.Intn(len(sites[s].media))]
					page.Components = append(page.Components, c)
				}
			}
			if err := web.AddPage(page); err != nil {
				return nil, err
			}
			g.PageURLs = append(g.PageURLs, url)
			g.TopicOf[url] = topic
		}
	}

	// Wire links: mostly intra-site, some cross-site; anchor text previews
	// the target's title (that is what makes anchor-text titles meaningful
	// in §5.2's logical documents).
	for s := range sites {
		for _, url := range sites[s].urls {
			page, _ := web.Lookup(url)
			n := 1 + rng.Intn(cfg.LinksPerPage*2) // mean ≈ LinksPerPage
			for l := 0; l < n; l++ {
				var target string
				if rng.Float64() < cfg.CrossSiteLinkProb {
					other := sites[rng.Intn(len(sites))]
					target = other.urls[rng.Intn(len(other.urls))]
				} else {
					target = sites[s].urls[rng.Intn(len(sites[s].urls))]
				}
				if target == url {
					continue
				}
				tp, _ := web.Lookup(target)
				page.Anchors = append(page.Anchors, simweb.Anchor{
					Text:   anchorText(rng, tp.Title),
					Target: target,
				})
			}
		}
	}
	return g, nil
}

// anchorText derives a short anchor text from the target's title: its
// first words, as a human author would label the link.
func anchorText(rng *rand.Rand, title string) string {
	words := splitWords(title)
	if len(words) == 0 {
		return "link"
	}
	n := 2 + rng.Intn(2)
	if n > len(words) {
		n = len(words)
	}
	return joinWords(words[:n])
}

func sizeBetween(rng *rand.Rand, lo, hi core.Bytes) core.Bytes {
	if hi <= lo {
		return lo
	}
	return lo + core.Bytes(rng.Int63n(int64(hi-lo)))
}

func splitWords(s string) []string {
	var out []string
	start := -1
	for i, r := range s {
		if r == ' ' {
			if start >= 0 {
				out = append(out, s[start:i])
				start = -1
			}
		} else if start < 0 {
			start = i
		}
	}
	if start >= 0 {
		out = append(out, s[start:])
	}
	return out
}

func joinWords(w []string) string {
	out := ""
	for i, s := range w {
		if i > 0 {
			out += " "
		}
		out += s
	}
	return out
}
