package workload

import (
	"fmt"
	"math/rand"
	"strings"
)

// baseWords is a pool of common English nouns used to build per-topic
// vocabularies. Topic vocabularies are disjoint slices of this pool
// (extended with synthesized words when the pool runs out), so clustering
// has real ground truth to recover while the text still looks like text.
var baseWords = []string{
	"station", "temple", "garden", "festival", "river", "mountain",
	"bridge", "market", "castle", "shrine", "museum", "theater",
	"library", "harbor", "island", "forest", "valley", "meadow",
	"train", "ticket", "schedule", "platform", "express", "transfer",
	"soccer", "baseball", "stadium", "player", "coach", "league",
	"tournament", "score", "goal", "match", "season", "champion",
	"stock", "bond", "yield", "inflation", "currency", "dividend",
	"earnings", "merger", "portfolio", "analyst", "forecast", "profit",
	"senate", "election", "ballot", "policy", "minister", "cabinet",
	"treaty", "summit", "reform", "budget", "governor", "mayor",
	"protein", "genome", "neuron", "molecule", "particle", "quantum",
	"orbit", "galaxy", "telescope", "microbe", "enzyme", "fossil",
	"processor", "network", "router", "protocol", "kernel", "compiler",
	"database", "query", "index", "storage", "latency", "bandwidth",
	"recipe", "noodle", "broth", "tofu", "seaweed", "matcha",
	"sushi", "tempura", "sake", "ramen", "bento", "wasabi",
	"guitar", "piano", "violin", "concert", "melody", "rhythm",
	"orchestra", "chorus", "opera", "ballet", "lyric", "album",
	"painting", "sculpture", "gallery", "canvas", "portrait", "mural",
	"novel", "poem", "author", "chapter", "editor", "publisher",
	"doctor", "clinic", "vaccine", "surgery", "diagnosis", "therapy",
	"weather", "typhoon", "rainfall", "humidity", "blizzard", "drought",
	"airline", "airport", "runway", "luggage", "passport", "customs",
	"hotel", "ryokan", "hostel", "reservation", "checkout", "lobby",
	"student", "lecture", "campus", "diploma", "professor", "seminar",
	"factory", "assembly", "robot", "welding", "turbine", "conveyor",
	"farmer", "harvest", "paddy", "orchard", "irrigation", "tractor",
	"lawyer", "verdict", "appeal", "statute", "contract", "tribunal",
	"soldier", "regiment", "fortress", "armistice", "brigade", "garrison",
	"merchant", "bazaar", "caravan", "ledger", "invoice", "warehouse",
}

// connectives pad generated sentences so the text has realistic stop-word
// density; they carry no topical signal (most are on the stop list).
var connectives = []string{
	"the", "of", "and", "in", "for", "with", "near", "about", "from", "to",
}

// Vocabulary holds per-topic word lists plus a shared pool.
type Vocabulary struct {
	Topics [][]string
	Shared []string
}

// NewVocabulary partitions the word pool into nTopics disjoint topic
// vocabularies of perTopic words plus a shared pool of nShared words.
// When the base pool is exhausted, synthetic words ("kyotoql3") extend it
// deterministically.
func NewVocabulary(nTopics, perTopic, nShared int) *Vocabulary {
	if nTopics < 1 || perTopic < 1 || nShared < 0 {
		panic("workload: invalid vocabulary shape")
	}
	need := nTopics*perTopic + nShared
	pool := make([]string, 0, need)
	pool = append(pool, baseWords...)
	for i := 0; len(pool) < need; i++ {
		// Suffix with a letter pair so the Porter stemmer leaves the word
		// intact and no collision with the base pool is possible.
		pool = append(pool, fmt.Sprintf("%sq%c%c", baseWords[i%len(baseWords)],
			'a'+rune(i%26), 'a'+rune((i/26)%26)))
	}
	v := &Vocabulary{Topics: make([][]string, nTopics)}
	for t := 0; t < nTopics; t++ {
		v.Topics[t] = pool[t*perTopic : (t+1)*perTopic]
	}
	v.Shared = pool[nTopics*perTopic : nTopics*perTopic+nShared]
	return v
}

// TopicWord samples one word of topic t; earlier words in the topic list
// are favored (Zipf-ish within topic) so per-topic term distributions are
// realistic.
func (v *Vocabulary) TopicWord(rng *rand.Rand, t int) string {
	words := v.Topics[t%len(v.Topics)]
	// Square a uniform to bias toward low indices.
	u := rng.Float64()
	i := int(u * u * float64(len(words)))
	if i >= len(words) {
		i = len(words) - 1
	}
	return words[i]
}

// SharedWord samples a shared-pool word; returns "" when there is no pool.
func (v *Vocabulary) SharedWord(rng *rand.Rand) string {
	if len(v.Shared) == 0 {
		return ""
	}
	return v.Shared[rng.Intn(len(v.Shared))]
}

// Sentence generates n content words of topic t, mixing in shared words
// with probability sharedProb and connectives between words.
func (v *Vocabulary) Sentence(rng *rand.Rand, t, n int, sharedProb float64) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(' ')
			if rng.Float64() < 0.3 {
				b.WriteString(connectives[rng.Intn(len(connectives))])
				b.WriteByte(' ')
			}
		}
		if sharedProb > 0 && rng.Float64() < sharedProb {
			if w := v.SharedWord(rng); w != "" {
				b.WriteString(w)
				continue
			}
		}
		b.WriteString(v.TopicWord(rng, t))
	}
	return b.String()
}
