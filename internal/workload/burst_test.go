package workload

import (
	"testing"

	"cbfww/internal/core"
)

func TestBurstScheduleExpand(t *testing.T) {
	b := BurstSchedule{Count: 2, Intensity: 0.8, FirstTopic: 3}
	evs := b.Expand(0, 30000)
	if len(evs) != 2 {
		t.Fatalf("events = %d", len(evs))
	}
	// Midpoints at 1/3 and 2/3 of the window, default length 5%.
	wantLen := core.Duration(30000 / 20)
	for i, ev := range evs {
		mid := core.Time(int64(30000) * int64(i+1) / 3)
		if ev.Start != mid.Add(-wantLen/2) || ev.Length != wantLen {
			t.Errorf("event %d = start %v len %v, want start %v len %v",
				i, ev.Start, ev.Length, mid.Add(-wantLen/2), wantLen)
		}
		if ev.Topic != 3+i || ev.Intensity != 0.8 {
			t.Errorf("event %d topic/intensity = %d/%v", i, ev.Topic, ev.Intensity)
		}
		if ev.Headline == "" {
			t.Errorf("event %d has no headline", i)
		}
	}

	// Zero values schedule nothing.
	for _, z := range []BurstSchedule{{}, {Count: 2}, {Intensity: 0.5}} {
		if got := z.Expand(0, 30000); len(got) != 0 {
			t.Errorf("%+v expanded to %d events", z, len(got))
		}
	}
	// Explicit length wins; sub-tick lengths clamp to 1.
	if evs := (BurstSchedule{Count: 1, Intensity: 1, Length: 7}).Expand(0, 100); evs[0].Length != 7 {
		t.Errorf("explicit length = %v", evs[0].Length)
	}
	if evs := (BurstSchedule{Count: 1, Intensity: 1}).Expand(0, 5); evs[0].Length != 1 {
		t.Errorf("clamped length = %v", evs[0].Length)
	}
}

// The Burst knob must actually skew the generated trace: during burst
// windows, event-topic pages should see a much larger share of requests
// than outside them.
func TestBurstScheduleSkewsTrace(t *testing.T) {
	clock := core.NewSimClock(0)
	wcfg := DefaultWebConfig()
	wcfg.Sites, wcfg.PagesPerSite, wcfg.Seed = 5, 12, 1
	g, err := GenerateWeb(clock, wcfg)
	if err != nil {
		t.Fatal(err)
	}
	tcfg := DefaultTraceConfig()
	tcfg.Sessions = 400
	tcfg.Length = 40000
	tcfg.Seed = 1
	tcfg.Burst = BurstSchedule{Count: 1, Intensity: 0.9, FirstTopic: 2}
	tr, err := GenerateTrace(g, clock, tcfg)
	if err != nil {
		t.Fatal(err)
	}

	evs := tcfg.Burst.Expand(tcfg.Start, tcfg.Length)
	if len(evs) != 1 {
		t.Fatalf("expanded events = %d", len(evs))
	}
	ev := evs[0]
	var inHits, inTotal, outHits, outTotal int
	for _, rec := range tr.Log {
		onTopic := g.TopicOf[rec.URL] == ev.Topic
		if !rec.Time.Before(ev.Start) && rec.Time.Before(ev.Start.Add(ev.Length)) {
			inTotal++
			if onTopic {
				inHits++
			}
		} else {
			outTotal++
			if onTopic {
				outHits++
			}
		}
	}
	if inTotal == 0 || outTotal == 0 {
		t.Fatalf("no traffic to compare (in=%d out=%d)", inTotal, outTotal)
	}
	inShare := float64(inHits) / float64(inTotal)
	outShare := float64(outHits) / float64(outTotal)
	if inShare < 2*outShare {
		t.Errorf("burst did not skew traffic: topic share %.3f in-window vs %.3f outside", inShare, outShare)
	}
}
