package topic

import (
	"math"
	"strings"
	"sync"
	"testing"

	"cbfww/internal/core"
	"cbfww/internal/simweb"
	"cbfww/internal/text"
)

func TestManagerLearnAndHotTerms(t *testing.T) {
	c := text.NewCorpus()
	m := NewManager(c.Dict())
	// High-priority content about kyoto, low-priority about osaka.
	m.Learn(c.VectorizeNew("kyoto station travel kyoto"), 0.9)
	m.Learn(c.VectorizeNew("osaka castle visit"), 0.1)

	hot := m.HotTerms(3)
	if len(hot) == 0 {
		t.Fatal("no hot terms")
	}
	if hot[0].Term != "kyoto" {
		t.Errorf("top term = %q, want kyoto", hot[0].Term)
	}
	var osakaW, kyotoW float64
	for _, wt := range m.HotTerms(100) {
		switch wt.Term {
		case "kyoto":
			kyotoW = wt.Weight
		case "osaka":
			osakaW = wt.Weight
		}
	}
	if kyotoW <= osakaW {
		t.Errorf("priority weighting lost: kyoto=%v osaka=%v", kyotoW, osakaW)
	}
}

func TestManagerHeat(t *testing.T) {
	c := text.NewCorpus()
	m := NewManager(c.Dict())
	if got := m.Heat(c.Vectorize("anything")); got != 0 {
		t.Errorf("empty model heat = %v", got)
	}
	m.Learn(c.VectorizeNew("festival fireworks kyoto"), 1)
	hotDoc := c.Vectorize("kyoto festival tonight")
	coldDoc := c.Vectorize("database index performance")
	if m.Heat(hotDoc) <= m.Heat(coldDoc) {
		t.Errorf("heat ordering wrong: hot=%v cold=%v", m.Heat(hotDoc), m.Heat(coldDoc))
	}
}

func TestManagerDecay(t *testing.T) {
	c := text.NewCorpus()
	m := NewManager(c.Dict())
	m.Learn(c.VectorizeNew("kyoto festival"), 1)
	before := m.HotTerms(1)[0].Weight
	m.Decay(0.5)
	after := m.HotTerms(1)[0].Weight
	if math.Abs(after-before/2) > 1e-9 {
		t.Errorf("decay: %v -> %v", before, after)
	}
	// Decay to nothing prunes entries.
	for i := 0; i < 40; i++ {
		m.Decay(0.1)
	}
	if got := m.HotTerms(10); len(got) != 0 {
		t.Errorf("terms survive full decay: %v", got)
	}
	// Invalid factors are no-ops.
	m.Learn(c.VectorizeNew("x y"), 1)
	w := m.HotTerms(1)[0].Weight
	m.Decay(0)
	m.Decay(1.5)
	if m.HotTerms(1)[0].Weight != w {
		t.Error("invalid decay changed weights")
	}
}

func TestManagerRelatedAndExpand(t *testing.T) {
	c := text.NewCorpus()
	m := NewManager(c.Dict())
	for i := 0; i < 5; i++ {
		m.Learn(c.VectorizeNew("kyoto station shinkansen"), 1)
		m.Learn(c.VectorizeNew("osaka harbor ferry"), 1)
	}
	rel := m.Related("kyoto", 5)
	if len(rel) == 0 {
		t.Fatal("no related terms")
	}
	relSet := map[string]bool{}
	for _, r := range rel {
		relSet[r.Term] = true
	}
	if !relSet["station"] || !relSet["shinkansen"] {
		t.Errorf("related to kyoto = %v", rel)
	}
	if relSet["ferri"] || relSet["harbor"] {
		t.Errorf("cross-topic relation leaked: %v", rel)
	}
	if got := m.Related("neverseen", 3); got != nil {
		t.Errorf("Related(unknown) = %v", got)
	}
	if got := m.Related("", 3); got != nil {
		t.Errorf("Related(empty) = %v", got)
	}

	q := m.ExpandQuery("kyoto", 2)
	if !strings.HasPrefix(q, "kyoto") {
		t.Errorf("expansion lost original: %q", q)
	}
	if !strings.Contains(q, "station") && !strings.Contains(q, "shinkansen") {
		t.Errorf("expansion missing related terms: %q", q)
	}
	// Expansion must not duplicate terms already in the query.
	q2 := m.ExpandQuery("kyoto station", 2)
	if strings.Count(q2, "station") > 1 {
		t.Errorf("duplicated term in expansion: %q", q2)
	}
}

func TestBoostTerm(t *testing.T) {
	m := NewManager(nil)
	m.BoostTerm("Gion Festival", 2)
	hot := m.HotTerms(5)
	if len(hot) != 2 {
		t.Fatalf("hot terms = %v", hot)
	}
	m.BoostTerm("", 1)   // no-op
	m.BoostTerm("x", -1) // no-op
	if len(m.HotTerms(5)) != 2 {
		t.Error("no-op boosts changed model")
	}
}

func TestManagerConcurrent(t *testing.T) {
	c := text.NewCorpus()
	m := NewManager(c.Dict())
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				m.Learn(c.Vectorize("kyoto station"), 0.5)
				m.Heat(c.Vectorize("kyoto"))
				m.HotTerms(3)
				m.Decay(0.999)
			}
		}()
	}
	wg.Wait()
}

func TestSensorDetectsBurst(t *testing.T) {
	clock := core.NewSimClock(0)
	feed := simweb.NewNewsFeed("np")
	s := NewSensor(clock, 0.9, feed)

	// Steady background chatter.
	for i := core.Time(0); i < 5; i++ {
		feed.Publish(simweb.Article{Time: i * 10, Headline: "weather report sunny"})
	}
	clock.Set(49)
	first := s.Poll()
	// First poll: everything is new, so everything bursts; absorb it.
	if len(first) == 0 {
		t.Fatal("first poll found nothing")
	}

	// More background, no bursts expected now.
	feed.Publish(simweb.Article{Time: 55, Headline: "weather report cloudy"})
	clock.Set(60)
	if bursts := s.Poll(); hasTerm(bursts, "weather") {
		t.Errorf("steady term burst: %v", bursts)
	}

	// The event: three headlines about the festival.
	for i := core.Time(61); i < 64; i++ {
		feed.Publish(simweb.Article{Time: i, Headline: "gion festival parade tonight"})
	}
	clock.Set(70)
	bursts := s.Poll()
	if !hasTerm(bursts, "festiv") && !hasTerm(bursts, "festival") {
		t.Fatalf("festival did not burst: %v", bursts)
	}
	if len(bursts) > 0 && bursts[0].Score <= 1 {
		t.Errorf("burst score = %v", bursts[0].Score)
	}

	// Repeat coverage of the same story bursts less.
	feed.Publish(simweb.Article{Time: 75, Headline: "gion festival crowds"})
	clock.Set(80)
	again := s.Poll()
	if s1, s2 := scoreOf(bursts, "festiv"), scoreOf(again, "festiv"); s2 >= s1 && s1 > 0 {
		t.Errorf("burst did not attenuate: %v then %v", s1, s2)
	}
}

func hasTerm(bs []Burst, term string) bool {
	for _, b := range bs {
		if b.Term == term {
			return true
		}
	}
	return false
}

func scoreOf(bs []Burst, term string) float64 {
	for _, b := range bs {
		if b.Term == term {
			return b.Score
		}
	}
	return 0
}

func TestSensorFeedInto(t *testing.T) {
	clock := core.NewSimClock(0)
	feed := simweb.NewNewsFeed("np")
	feed.Publish(simweb.Article{Time: 0, Headline: "typhoon warning kansai"})
	s := NewSensor(clock, 0.9, feed)
	m := NewManager(nil)
	bursts := s.FeedInto(m, 1.0)
	if len(bursts) == 0 {
		t.Fatal("no bursts")
	}
	hot := m.HotTerms(5)
	found := false
	for _, wt := range hot {
		if wt.Term == "typhoon" {
			found = true
		}
	}
	if !found {
		t.Errorf("typhoon not boosted into manager: %v", hot)
	}
}

func TestSensorMultipleFeeds(t *testing.T) {
	clock := core.NewSimClock(10)
	f1 := simweb.NewNewsFeed("a")
	f2 := simweb.NewNewsFeed("b")
	f1.Publish(simweb.Article{Time: 5, Headline: "earthquake drill"})
	s := NewSensor(clock, 0.9, f1)
	s.AddFeed(f2)
	f2.Publish(simweb.Article{Time: 8, Headline: "earthquake preparedness"})
	bursts := s.Poll()
	if got := scoreOf(bursts, "earthquak"); got < 1.9 {
		t.Errorf("cross-feed burst score = %v, want ~2", got)
	}
}

func TestSensorDefaultDecay(t *testing.T) {
	s := NewSensor(core.NewSimClock(0), 5) // invalid decay falls back
	if s.decay != 0.9 {
		t.Errorf("decay = %v, want default 0.9", s.decay)
	}
}
