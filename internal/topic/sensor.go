package topic

import (
	"sort"
	"sync"

	"cbfww/internal/core"
	"cbfww/internal/simweb"
	"cbfww/internal/text"
)

// Burst is a term whose frequency in fresh news spikes above its running
// baseline — a hot topic the sensor predicts will drive near-future
// queries.
type Burst struct {
	Term string
	// Score is the burst strength: fresh occurrences relative to the
	// term's baseline rate (higher = more anomalous).
	Score float64
}

// Sensor polls news feeds and detects bursting terms. Safe for concurrent
// use.
type Sensor struct {
	mu    sync.Mutex
	clock core.Clock
	feeds []*simweb.NewsFeed
	// baseline is an exponentially aged per-term headline frequency.
	baseline map[string]float64
	// halfLifeWeight is the multiplier applied to baselines at each poll.
	decay float64
	last  core.Time
}

// NewSensor returns a sensor over the given feeds. decay in (0,1) controls
// how fast baselines forget (smaller = faster); 0.9 is a reasonable
// default for hourly polling.
func NewSensor(clock core.Clock, decay float64, feeds ...*simweb.NewsFeed) *Sensor {
	if decay <= 0 || decay >= 1 {
		decay = 0.9
	}
	return &Sensor{
		clock:    clock,
		feeds:    feeds,
		baseline: make(map[string]float64),
		decay:    decay,
		last:     core.TimeNever,
	}
}

// AddFeed registers another feed.
func (s *Sensor) AddFeed(f *simweb.NewsFeed) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.feeds = append(s.feeds, f)
}

// Poll reads all articles published since the previous poll, updates
// baselines and returns the bursting terms in descending score order.
// Terms never seen before burst maximally (their baseline is empty).
func (s *Sensor) Poll() []Burst {
	now := s.clock.Now()
	s.mu.Lock()
	defer s.mu.Unlock()

	fresh := make(map[string]float64)
	for _, f := range s.feeds {
		for _, a := range f.Since(s.last, now) {
			for _, term := range termsOf(a.Headline) {
				fresh[term]++
			}
		}
	}
	s.last = now

	// Score before baselines absorb the fresh counts: score = fresh
	// occurrences divided by (baseline + ½). A term never seen before
	// bursts even on a single mention (score 2); a term whose mention rate
	// matches its baseline scores well under 1 and stays quiet.
	var bursts []Burst
	for term, n := range fresh {
		score := n / (s.baseline[term] + 0.5)
		if score > 1 {
			bursts = append(bursts, Burst{Term: term, Score: score})
		}
	}
	sort.Slice(bursts, func(i, j int) bool {
		if bursts[i].Score != bursts[j].Score {
			return bursts[i].Score > bursts[j].Score
		}
		return bursts[i].Term < bursts[j].Term
	})

	// Age baselines, then absorb the fresh counts.
	for term, b := range s.baseline {
		nb := b * s.decay
		if nb < 1e-9 {
			delete(s.baseline, term)
			continue
		}
		s.baseline[term] = nb
	}
	for term, n := range fresh {
		s.baseline[term] += n
	}
	return bursts
}

// FeedInto polls and pushes every burst into the manager as a term boost
// scaled by gain — the standing wiring between sensor and manager ("They
// can be used for modifying weights of topics managed by Topic Manager").
// It returns the bursts for callers that also want to prefetch.
func (s *Sensor) FeedInto(m *Manager, gain float64) []Burst {
	bursts := s.Poll()
	for _, b := range bursts {
		m.BoostTerm(b.Term, b.Score*gain)
	}
	return bursts
}

// termsOf mirrors text.Terms but is kept separate so the sensor could
// apply news-specific normalization later.
func termsOf(headline string) []string {
	return text.Terms(headline)
}
