// Package topic implements the Topic Manager and Topic Sensor of §3.
//
// The Topic Manager maintains "words and phrases with weights showing the
// importance", learned from the content of objects weighted by their
// priorities, plus co-occurrence relationships between terms. The Topic
// Sensor polls news feeds for bursting terms — "popular topics which have
// concentration of usage for rather short period" — and feeds those bursts
// back into the manager so that admission-time priorities and prefetching
// can anticipate the coming request wave.
package topic

import (
	"math"
	"sort"
	"sync"

	"cbfww/internal/core"
	"cbfww/internal/text"
)

// WeightedTerm is a term with an importance weight.
type WeightedTerm struct {
	Term   string
	Weight float64
}

// Manager holds the evolving term-importance model. Safe for concurrent
// use.
type Manager struct {
	mu   sync.RWMutex
	dict *text.Dictionary
	// weights is the importance of each term, accumulated from prioritized
	// content and sensor bursts, decayed over time. A mutable Builder (not
	// an immutable Vector) because the model changes on every Learn.
	weights text.Builder
	// norm2 is the squared Euclidean norm of weights, maintained
	// incrementally so Heat never has to scan the whole model.
	norm2 float64
	// cooc counts weighted co-occurrence between term pairs; kept sparse
	// and pruned. Key is the lower TermID; value maps the higher TermID to
	// accumulated weight.
	cooc map[text.TermID]map[text.TermID]float64
}

// NewManager returns an empty manager sharing the given dictionary (so
// TermIDs agree with the corpus); nil gets a private dictionary.
func NewManager(dict *text.Dictionary) *Manager {
	if dict == nil {
		dict = text.NewDictionary()
	}
	return &Manager{
		dict:    dict,
		weights: text.NewBuilder(),
		cooc:    make(map[text.TermID]map[text.TermID]float64),
	}
}

// bump adds d to one term's weight and keeps norm2 in sync:
// (w+d)² − w² = d·(2w + d).
func (m *Manager) bump(id text.TermID, d float64) {
	old := m.weights[id]
	m.weights[id] = old + d
	m.norm2 += d * (2*old + d)
}

// Learn folds a document vector into the term-importance model, weighted
// by the document's priority ("By analyzing contents with priorities we
// can get words and phrases with weights showing the importance").
// Co-occurrence between the document's top terms is also recorded.
func (m *Manager) Learn(vec text.Vector, priority core.Priority) {
	if priority < 0 {
		priority = 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	vec.ForEach(func(id text.TermID, w float64) {
		m.bump(id, float64(priority)*w)
	})
	top := vec.Top(8)
	for i := 0; i < len(top); i++ {
		for j := i + 1; j < len(top); j++ {
			a, b := top[i], top[j]
			if a > b {
				a, b = b, a
			}
			if m.cooc[a] == nil {
				m.cooc[a] = make(map[text.TermID]float64)
			}
			m.cooc[a][b] += float64(priority) * vec.Get(top[i]) * vec.Get(top[j])
		}
	}
}

// BoostTerm raises a single term's weight directly — the path the Topic
// Sensor uses for burst terms.
func (m *Manager) BoostTerm(term string, w float64) {
	terms := text.Terms(term)
	if len(terms) == 0 || w <= 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, t := range terms {
		m.bump(m.dict.ID(t), w)
	}
}

// Heat scores how hot a document vector is under the current topic
// weights: the dot product with the (unit-normalized) weight vector, in
// [0, 1] for unit document vectors. A zero model scores everything 0.
func (m *Manager) Heat(vec text.Vector) float64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.norm2 <= 0 {
		return 0
	}
	var dot float64
	vec.ForEach(func(id text.TermID, w float64) {
		dot += w * m.weights[id]
	})
	return dot / math.Sqrt(m.norm2)
}

// Decay multiplies all weights by factor in (0,1], dropping negligible
// entries. Hot topics have short lifetimes (§4.4); the warehouse calls
// Decay on a fixed cadence.
func (m *Manager) Decay(factor float64) {
	if factor <= 0 || factor > 1 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for id, w := range m.weights {
		w *= factor
		if math.Abs(w) < 1e-9 {
			delete(m.weights, id)
		} else {
			m.weights[id] = w
		}
	}
	m.norm2 = 0
	for _, w := range m.weights {
		m.norm2 += w * w
	}
	for a, row := range m.cooc {
		for b := range row {
			row[b] *= factor
			if row[b] < 1e-9 {
				delete(row, b)
			}
		}
		if len(row) == 0 {
			delete(m.cooc, a)
		}
	}
}

// HotTerms returns the n most important terms.
func (m *Manager) HotTerms(n int) []WeightedTerm {
	m.mu.RLock()
	defer m.mu.RUnlock()
	ids := m.weights.Top(n)
	out := make([]WeightedTerm, len(ids))
	for i, id := range ids {
		out[i] = WeightedTerm{Term: m.dict.Term(id), Weight: m.weights[id]}
	}
	return out
}

// Related returns up to n terms that co-occur most strongly with term
// ("Relationships between topics can also be computed using coexistence
// relationship").
func (m *Manager) Related(term string, n int) []WeightedTerm {
	terms := text.Terms(term)
	if len(terms) == 0 {
		return nil
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	id, ok := m.dict.Lookup(terms[0])
	if !ok {
		return nil
	}
	acc := make(map[text.TermID]float64)
	for b, w := range m.cooc[id] {
		acc[b] += w
	}
	for a, row := range m.cooc {
		if w, ok := row[id]; ok {
			acc[a] += w
		}
	}
	out := make([]WeightedTerm, 0, len(acc))
	for tid, w := range acc {
		out = append(out, WeightedTerm{Term: m.dict.Term(tid), Weight: w})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Weight != out[j].Weight {
			return out[i].Weight > out[j].Weight
		}
		return out[i].Term < out[j].Term
	})
	if n < len(out) {
		out = out[:n]
	}
	return out
}

// ExpandQuery appends the strongest related term of each query term —
// §3(1): "A query given by a user is modified by the contents of Topic
// Manager". The original query text always survives unchanged at the
// front.
func (m *Manager) ExpandQuery(query string, perTerm int) string {
	out := query
	seen := map[string]bool{}
	for _, t := range text.Terms(query) {
		seen[t] = true
	}
	for _, t := range text.Terms(query) {
		for _, rel := range m.Related(t, perTerm) {
			if !seen[rel.Term] {
				seen[rel.Term] = true
				out += " " + rel.Term
			}
		}
	}
	return out
}
