package text

import (
	"math"
	"sync"
)

// Corpus accumulates document-frequency statistics and produces TF-IDF
// vectors in the vector space model (§5.1 of the paper). It is an *online*
// corpus: documents are added one at a time as the warehouse admits them,
// and IDF weights reflect everything seen so far. Corpus is safe for
// concurrent use.
type Corpus struct {
	mu      sync.RWMutex
	dict    *Dictionary
	docFreq map[TermID]int // number of docs containing the term
	numDocs int
}

// NewCorpus returns an empty corpus with its own dictionary.
func NewCorpus() *Corpus {
	return &Corpus{
		dict:    NewDictionary(),
		docFreq: make(map[TermID]int),
	}
}

// Dict exposes the corpus dictionary for rendering vectors. Callers must
// not mutate it concurrently with Add; lookups during reads are fine
// because the dictionary only grows under the corpus lock.
func (c *Corpus) Dict() *Dictionary { return c.dict }

// NumDocs returns the number of documents added so far.
func (c *Corpus) NumDocs() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.numDocs
}

// NumTerms returns the number of distinct terms seen so far.
func (c *Corpus) NumTerms() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.dict.Len()
}

// Add registers a document given as raw text, updating document
// frequencies, and returns its raw term-frequency vector.
func (c *Corpus) Add(content string) Vector {
	counts := TermCounts(content)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.numDocs++
	b := NewBuilder()
	for term, n := range counts {
		id := c.dict.ID(term)
		c.docFreq[id]++
		b.Set(id, float64(n))
	}
	return b.Vector()
}

// idfLocked returns the smoothed inverse document frequency of id. Must be
// called with at least a read lock held.
func (c *Corpus) idfLocked(id TermID) float64 {
	df := c.docFreq[id]
	// Smoothed IDF: ln((1+N)/(1+df)) + 1. Always positive, defined even for
	// unseen terms, standard in online settings.
	return math.Log(float64(1+c.numDocs)/float64(1+df)) + 1
}

// IDF returns the smoothed inverse document frequency of term; unseen terms
// get the maximum IDF for the current corpus size.
func (c *Corpus) IDF(term string) float64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	id, ok := c.dict.Lookup(term)
	if !ok {
		return math.Log(float64(1+c.numDocs)) + 1
	}
	return c.idfLocked(id)
}

// TFIDF converts a raw term-frequency vector (as returned by Add or built
// by the caller) into a unit-normalized TF-IDF vector. TF is
// log-dampened: 1 + ln(tf).
func (c *Corpus) TFIDF(tf Vector) Vector {
	c.mu.RLock()
	defer c.mu.RUnlock()
	// tf is already id-sorted, so the output can be built in place without
	// a map round trip.
	ids := make([]TermID, 0, tf.Len())
	ws := make([]float64, 0, tf.Len())
	tf.ForEach(func(id TermID, f float64) {
		if f <= 0 {
			return
		}
		ids = append(ids, id)
		ws = append(ws, (1+math.Log(f))*c.idfLocked(id))
	})
	return makeVector(ids, ws).Normalize()
}

// VectorizeNew adds content to the corpus and returns its TF-IDF vector in
// one step — the common admission path.
func (c *Corpus) VectorizeNew(content string) Vector {
	return c.TFIDF(c.Add(content))
}

// Vectorize returns the TF-IDF vector of content against the current corpus
// statistics without adding it (used for queries). Terms the corpus has
// never seen are still included, with maximal IDF, so that two queries
// about the same unseen topic remain similar to each other.
func (c *Corpus) Vectorize(content string) Vector {
	counts := TermCounts(content)
	c.mu.Lock() // dict.ID may grow the dictionary
	defer c.mu.Unlock()
	b := NewBuilder()
	for term, n := range counts {
		id := c.dict.ID(term)
		b.Set(id, (1+math.Log(float64(n)))*c.idfLocked(id))
	}
	return b.Vector().Normalize()
}

// WeightedVector builds the comprehensive feature vector of a logical
// document per §5.3 of the paper:
//
//	v = ω·v_title + v_body
//
// where ω > 1 stresses title terms (anchor texts along the path plus the
// terminal document's title) over body terms. The result is unit-normalized.
func (c *Corpus) WeightedVector(title, body string, omega float64) Vector {
	if omega < 1 {
		omega = 1
	}
	vt := c.Vectorize(title)
	vb := c.Vectorize(body)
	return vb.AddScaled(vt, omega).Normalize()
}
