package text

import (
	"math"
	"sync"
)

// Corpus accumulates document-frequency statistics and produces TF-IDF
// vectors in the vector space model (§5.1 of the paper). It is an *online*
// corpus: documents are added one at a time as the warehouse admits them,
// and IDF weights reflect everything seen so far. Corpus is safe for
// concurrent use.
type Corpus struct {
	mu      sync.RWMutex
	dict    *Dictionary
	docFreq map[TermID]int // number of docs containing the term
	numDocs int
}

// NewCorpus returns an empty corpus with its own dictionary.
func NewCorpus() *Corpus {
	return &Corpus{
		dict:    NewDictionary(),
		docFreq: make(map[TermID]int),
	}
}

// Dict exposes the corpus dictionary for rendering vectors. Callers must
// not mutate it concurrently with Add; lookups during reads are fine
// because the dictionary only grows under the corpus lock.
func (c *Corpus) Dict() *Dictionary { return c.dict }

// NumDocs returns the number of documents added so far.
func (c *Corpus) NumDocs() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.numDocs
}

// NumTerms returns the number of distinct terms seen so far.
func (c *Corpus) NumTerms() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.dict.Len()
}

// Add registers a document given as raw text, updating document
// frequencies, and returns its raw term-frequency vector.
func (c *Corpus) Add(content string) Vector {
	counts := TermCounts(content)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.numDocs++
	v := NewVector(len(counts))
	for term, n := range counts {
		id := c.dict.ID(term)
		c.docFreq[id]++
		v[id] = float64(n)
	}
	return v
}

// idfLocked returns the smoothed inverse document frequency of id. Must be
// called with at least a read lock held.
func (c *Corpus) idfLocked(id TermID) float64 {
	df := c.docFreq[id]
	// Smoothed IDF: ln((1+N)/(1+df)) + 1. Always positive, defined even for
	// unseen terms, standard in online settings.
	return math.Log(float64(1+c.numDocs)/float64(1+df)) + 1
}

// IDF returns the smoothed inverse document frequency of term; unseen terms
// get the maximum IDF for the current corpus size.
func (c *Corpus) IDF(term string) float64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	id, ok := c.dict.Lookup(term)
	if !ok {
		return math.Log(float64(1+c.numDocs)) + 1
	}
	return c.idfLocked(id)
}

// TFIDF converts a raw term-frequency vector (as returned by Add or built
// by the caller) into a unit-normalized TF-IDF vector. TF is
// log-dampened: 1 + ln(tf).
func (c *Corpus) TFIDF(tf Vector) Vector {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := NewVector(len(tf))
	for id, f := range tf {
		if f <= 0 {
			continue
		}
		out[id] = (1 + math.Log(f)) * c.idfLocked(id)
	}
	return out.Normalize()
}

// VectorizeNew adds content to the corpus and returns its TF-IDF vector in
// one step — the common admission path.
func (c *Corpus) VectorizeNew(content string) Vector {
	return c.TFIDF(c.Add(content))
}

// Vectorize returns the TF-IDF vector of content against the current corpus
// statistics without adding it (used for queries). Terms the corpus has
// never seen are still included, with maximal IDF, so that two queries
// about the same unseen topic remain similar to each other.
func (c *Corpus) Vectorize(content string) Vector {
	counts := TermCounts(content)
	c.mu.Lock() // dict.ID may grow the dictionary
	defer c.mu.Unlock()
	v := NewVector(len(counts))
	for term, n := range counts {
		id := c.dict.ID(term)
		v[id] = (1 + math.Log(float64(n))) * c.idfLocked(id)
	}
	return v.Normalize()
}

// WeightedVector builds the comprehensive feature vector of a logical
// document per §5.3 of the paper:
//
//	v = ω·v_title + v_body
//
// where ω > 1 stresses title terms (anchor texts along the path plus the
// terminal document's title) over body terms. The result is unit-normalized.
func (c *Corpus) WeightedVector(title, body string, omega float64) Vector {
	if omega < 1 {
		omega = 1
	}
	vt := c.Vectorize(title)
	vb := c.Vectorize(body)
	out := NewVector(len(vt) + len(vb))
	out.AddScaled(vt, omega)
	out.AddScaled(vb, 1)
	return out.Normalize()
}
