package text

import (
	"math"
	"sort"
	"sync"

	"cbfww/internal/core"
)

// Posting is one entry in an inverted-index posting list: a document that
// contains the term, with its term frequency.
type Posting struct {
	Doc core.ObjectID
	TF  int
}

// InvertedIndex maps terms to posting lists over warehouse objects. It
// backs the query engine's MENTION operator and the per-level "hierarchy of
// indices" of §4.1. The index supports removal so objects evicted from a
// tier's detailed index can be dropped. Safe for concurrent use.
type InvertedIndex struct {
	mu       sync.RWMutex
	dict     *Dictionary
	postings map[TermID][]Posting
	docLen   map[core.ObjectID]int // total term count per doc
}

// NewInvertedIndex returns an empty index sharing the given dictionary; a
// nil dictionary gets a fresh private one. Sharing the corpus dictionary
// keeps TermIDs consistent between vectors and postings.
func NewInvertedIndex(dict *Dictionary) *InvertedIndex {
	if dict == nil {
		dict = NewDictionary()
	}
	return &InvertedIndex{
		dict:     dict,
		postings: make(map[TermID][]Posting),
		docLen:   make(map[core.ObjectID]int),
	}
}

// Index adds a document's content under id, replacing any previous content
// for the same id.
func (ix *InvertedIndex) Index(id core.ObjectID, content string) {
	counts := TermCounts(content)
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if _, ok := ix.docLen[id]; ok {
		ix.removeLocked(id)
	}
	total := 0
	for term, n := range counts {
		tid := ix.dict.ID(term)
		ix.postings[tid] = append(ix.postings[tid], Posting{Doc: id, TF: n})
		total += n
	}
	ix.docLen[id] = total
}

// Remove deletes all postings for id. Removing an unknown id is a no-op.
func (ix *InvertedIndex) Remove(id core.ObjectID) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.removeLocked(id)
}

func (ix *InvertedIndex) removeLocked(id core.ObjectID) {
	if _, ok := ix.docLen[id]; !ok {
		return
	}
	delete(ix.docLen, id)
	for tid, list := range ix.postings {
		out := list[:0]
		for _, p := range list {
			if p.Doc != id {
				out = append(out, p)
			}
		}
		if len(out) == 0 {
			delete(ix.postings, tid)
		} else {
			ix.postings[tid] = out
		}
	}
}

// Contains reports whether id is indexed.
func (ix *InvertedIndex) Contains(id core.ObjectID) bool {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	_, ok := ix.docLen[id]
	return ok
}

// NumDocs returns the number of indexed documents.
func (ix *InvertedIndex) NumDocs() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.docLen)
}

// Lookup returns the documents containing the given (raw, unstemmed) term,
// in ascending ObjectID order.
func (ix *InvertedIndex) Lookup(term string) []core.ObjectID {
	terms := Terms(term)
	if len(terms) == 0 {
		return nil
	}
	return ix.lookupCanonical(terms[0])
}

func (ix *InvertedIndex) lookupCanonical(term string) []core.ObjectID {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	tid, ok := ix.dict.Lookup(term)
	if !ok {
		return nil
	}
	list := ix.postings[tid]
	out := make([]core.ObjectID, len(list))
	for i, p := range list {
		out[i] = p.Doc
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Mention returns the documents that contain *every* term of the phrase —
// the semantics of the paper's MENTION operator (conjunctive containment
// after canonical preprocessing). Result is in ascending ObjectID order.
func (ix *InvertedIndex) Mention(phrase string) []core.ObjectID {
	terms := Terms(phrase)
	if len(terms) == 0 {
		return nil
	}
	result := ix.lookupCanonical(terms[0])
	for _, t := range terms[1:] {
		if len(result) == 0 {
			return nil
		}
		result = intersectSorted(result, ix.lookupCanonical(t))
	}
	return result
}

// Score ranks indexed documents by TF-IDF-weighted match against the query
// string and returns up to n (id, score) pairs in descending score order.
type Score struct {
	Doc   core.ObjectID
	Value float64
}

// Search performs ranked retrieval: documents are scored by the sum over
// query terms of tf·idf, normalized by document length.
func (ix *InvertedIndex) Search(query string, n int) []Score {
	terms := Terms(query)
	if len(terms) == 0 {
		return nil
	}
	return SelectTop(ix.AppendSearch(nil, terms), n)
}

// AppendSearch scores the pre-canonicalized terms against the index and
// appends one Score per matching document to dst, unranked. Callers
// probing several index segments (the sharded hot index) parse the query
// once, stream every segment's matches into one buffer, and rank the
// union with SelectTop — instead of paying a parse, an accumulator and a
// result slice per segment.
func (ix *InvertedIndex) AppendSearch(dst []Score, terms []string) []Score {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	numDocs := len(ix.docLen)
	if len(terms) == 1 {
		// Single-term fast path: the posting list already holds one entry
		// per document, so scores stream straight out with no map.
		tid, ok := ix.dict.Lookup(terms[0])
		if !ok {
			return dst
		}
		list := ix.postings[tid]
		if len(list) == 0 {
			return dst
		}
		idf := idfFor(numDocs, len(list))
		for _, p := range list {
			s := float64(p.TF) * idf
			if l := ix.docLen[p.Doc]; l > 0 {
				s /= float64(l)
			}
			dst = append(dst, Score{Doc: p.Doc, Value: s})
		}
		return dst
	}
	scores := make(map[core.ObjectID]float64)
	for _, t := range terms {
		tid, ok := ix.dict.Lookup(t)
		if !ok {
			continue
		}
		list := ix.postings[tid]
		if len(list) == 0 {
			continue
		}
		idf := idfFor(numDocs, len(list))
		for _, p := range list {
			scores[p.Doc] += float64(p.TF) * idf
		}
	}
	for id, s := range scores {
		if l := ix.docLen[id]; l > 0 {
			s /= float64(l)
		}
		dst = append(dst, Score{Doc: id, Value: s})
	}
	return dst
}

// SelectTop keeps the n best scores (Value descending, Doc ascending on
// ties) of s, in that order, selecting in place with a bounded min-heap —
// O(len·log n) instead of the O(len·log len) full sort — and returns the
// truncated slice. n < 0 means all. The tail of s beyond the result is left
// in unspecified order.
func SelectTop(s []Score, n int) []Score {
	if n == 0 {
		return s[:0]
	}
	if n < 0 || n >= len(s) {
		sortScores(s)
		return s
	}
	// Min-heap over the first n entries: the worst kept score sits at the
	// root, and every remaining entry either displaces it or is skipped.
	h := s[:n]
	for i := n/2 - 1; i >= 0; i-- {
		scoreSiftDown(h, i)
	}
	for i := n; i < len(s); i++ {
		if scoreBetter(s[i], h[0]) {
			h[0] = s[i]
			scoreSiftDown(h, 0)
		}
	}
	sortScores(h)
	return h
}

// sortScores orders s best-first by heapsort — allocation-free, unlike
// sort.Slice, whose reflective closure shows up on the tiered-search hot
// path. The comparator is a total order (ties break on Doc), so the
// result is deterministic despite heapsort's instability.
func sortScores(s []Score) {
	for i := len(s)/2 - 1; i >= 0; i-- {
		scoreSiftDown(s, i)
	}
	// Popping the min-heap's root (the worst score) to the shrinking tail
	// leaves the slice best-first.
	for end := len(s) - 1; end > 0; end-- {
		s[0], s[end] = s[end], s[0]
		scoreSiftDown(s[:end], 0)
	}
}

// scoreBetter reports whether a ranks above b.
func scoreBetter(a, b Score) bool {
	if a.Value != b.Value {
		return a.Value > b.Value
	}
	return a.Doc < b.Doc
}

// scoreSiftDown restores the min-heap property (worst score at the root)
// below index i.
func scoreSiftDown(h []Score, i int) {
	for {
		worst := i
		if l := 2*i + 1; l < len(h) && scoreBetter(h[worst], h[l]) {
			worst = l
		}
		if r := 2*i + 2; r < len(h) && scoreBetter(h[worst], h[r]) {
			worst = r
		}
		if worst == i {
			return
		}
		h[i], h[worst] = h[worst], h[i]
		i = worst
	}
}

// idfFor is ln((1+N)/(1+df)) floored at 0 so extremely common terms don't
// get negative weight.
func idfFor(numDocs, df int) float64 {
	if df == 0 {
		return 0
	}
	x := float64(1+numDocs) / float64(1+df)
	if x <= 1 {
		return 0
	}
	return math.Log(x)
}

// intersectSorted intersects two ascending ObjectID slices.
func intersectSorted(a, b []core.ObjectID) []core.ObjectID {
	out := a[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}
