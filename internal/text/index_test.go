package text

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"cbfww/internal/core"
)

func TestIndexLookup(t *testing.T) {
	ix := NewInvertedIndex(nil)
	ix.Index(1, "data warehouse design")
	ix.Index(2, "data stream systems")
	ix.Index(3, "kyoto travel guide")

	if got := ix.Lookup("data"); !reflect.DeepEqual(got, []core.ObjectID{1, 2}) {
		t.Errorf("Lookup(data) = %v", got)
	}
	if got := ix.Lookup("warehouses"); !reflect.DeepEqual(got, []core.ObjectID{1}) {
		t.Errorf("Lookup(warehouses) = %v (stemming should match)", got)
	}
	if got := ix.Lookup("missing"); got != nil {
		t.Errorf("Lookup(missing) = %v", got)
	}
	if got := ix.Lookup("the"); got != nil {
		t.Errorf("Lookup(stopword) = %v", got)
	}
	if ix.NumDocs() != 3 {
		t.Errorf("NumDocs = %d", ix.NumDocs())
	}
}

func TestIndexMentionConjunctive(t *testing.T) {
	ix := NewInvertedIndex(nil)
	ix.Index(1, "data warehouse design")
	ix.Index(2, "data stream systems")
	ix.Index(3, "warehouse of data and streams")

	got := ix.Mention("data warehouse")
	want := []core.ObjectID{1, 3}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Mention = %v, want %v", got, want)
	}
	if got := ix.Mention("data warehouse kyoto"); len(got) != 0 {
		t.Errorf("Mention with absent term = %v", got)
	}
	if got := ix.Mention(""); got != nil {
		t.Errorf("Mention(empty) = %v", got)
	}
}

func TestIndexReplaceAndRemove(t *testing.T) {
	ix := NewInvertedIndex(nil)
	ix.Index(1, "old content about kyoto")
	ix.Index(1, "new content about osaka")
	if got := ix.Lookup("kyoto"); len(got) != 0 {
		t.Errorf("stale posting after reindex: %v", got)
	}
	if got := ix.Lookup("osaka"); !reflect.DeepEqual(got, []core.ObjectID{1}) {
		t.Errorf("Lookup(osaka) = %v", got)
	}
	ix.Remove(1)
	if ix.Contains(1) {
		t.Error("Contains after Remove")
	}
	if got := ix.Lookup("osaka"); len(got) != 0 {
		t.Errorf("posting after Remove: %v", got)
	}
	ix.Remove(42) // removing unknown id is a no-op
}

func TestIndexSearchRanking(t *testing.T) {
	ix := NewInvertedIndex(nil)
	ix.Index(1, "kyoto kyoto kyoto station")
	ix.Index(2, "kyoto hotel cheap")
	ix.Index(3, "osaka castle guide")
	ix.Index(4, "nara deer park")

	got := ix.Search("kyoto station", 10)
	if len(got) != 2 {
		t.Fatalf("Search returned %d docs: %v", len(got), got)
	}
	if got[0].Doc != 1 {
		t.Errorf("top doc = %v, want 1 (more query-term mass)", got[0].Doc)
	}
	if got[0].Value <= got[1].Value {
		t.Errorf("scores not descending: %v", got)
	}
	if got := ix.Search("zzz", 10); len(got) != 0 {
		t.Errorf("Search(unknown) = %v", got)
	}
	if got := ix.Search("kyoto", 1); len(got) != 1 {
		t.Errorf("Search limit ignored: %v", got)
	}
}

func TestIndexSharedDictionary(t *testing.T) {
	c := NewCorpus()
	ix := NewInvertedIndex(c.Dict())
	c.Add("kyoto station")
	ix.Index(1, "kyoto station")
	// Both should agree on the TermID for "kyoto".
	id1, ok1 := c.Dict().Lookup("kyoto")
	if !ok1 {
		t.Fatal("corpus missing kyoto")
	}
	if got := ix.Lookup("kyoto"); len(got) != 1 {
		t.Fatalf("index lookup failed: %v", got)
	}
	_ = id1
}

func TestIndexConcurrent(t *testing.T) {
	ix := NewInvertedIndex(nil)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id := core.ObjectID(g*50 + i + 1)
				ix.Index(id, fmt.Sprintf("doc %d kyoto data", id))
				ix.Lookup("kyoto")
				ix.Search("data", 5)
			}
		}(g)
	}
	wg.Wait()
	if ix.NumDocs() != 200 {
		t.Errorf("NumDocs = %d, want 200", ix.NumDocs())
	}
}

func TestIntersectSorted(t *testing.T) {
	a := []core.ObjectID{1, 3, 5, 7}
	b := []core.ObjectID{3, 4, 5, 8}
	got := intersectSorted(append([]core.ObjectID(nil), a...), b)
	want := []core.ObjectID{3, 5}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("intersectSorted = %v, want %v", got, want)
	}
	if got := intersectSorted(nil, b); len(got) != 0 {
		t.Errorf("intersect with nil = %v", got)
	}
}
