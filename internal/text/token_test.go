package text

import (
	"reflect"
	"testing"
)

func TestTokenizeBasic(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Hello, World!", []string{"hello", "world"}},
		{"", nil},
		{"   \t\n ", nil},
		{"CIDR-2003 conference", []string{"cidr", "2003", "conference"}},
		{"don't stop", []string{"don", "t", "stop"}},
		{"ascii only ΚΥΟΤΟ καλά", []string{"ascii", "only", "κυοτο", "καλά"}},
	}
	for _, c := range cases {
		got := Tokenize(c.in)
		if len(got) == 0 && len(c.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestTokenizeStripsMarkup(t *testing.T) {
	got := Tokenize(`<html><body><a href="x.html">Kyoto Station</a></body></html>`)
	want := []string{"kyoto", "station"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokenize(html) = %v, want %v", got, want)
	}
}

func TestStripTags(t *testing.T) {
	cases := []struct{ in, want string }{
		{"no tags", "no tags"},
		{"<b>bold</b>", " bold "},
		{"a < b", "a "},     // unterminated tag swallows the rest
		{"a > b", "a > b"},  // lone > is literal
		{"<a <b>>x", "  x"}, // nested opens: both closers act as separators
	}
	for _, c := range cases {
		if got := StripTags(c.in); got != c.want {
			t.Errorf("StripTags(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestTermsPipeline(t *testing.T) {
	got := Terms("The travelers are traveling to Kyoto stations")
	// "the","are","to" are stop words; remaining words are stemmed.
	want := []string{"travel", "travel", "kyoto", "station"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Terms = %v, want %v", got, want)
	}
}

func TestTermCounts(t *testing.T) {
	got := TermCounts("data stream data warehouse")
	if got["data"] != 2 {
		t.Errorf("count[data] = %d, want 2", got["data"])
	}
	if got["stream"] != 1 || got["warehous"] != 1 {
		t.Errorf("counts = %v", got)
	}
}

func TestIsStopWord(t *testing.T) {
	for _, w := range []string{"the", "a", "click", "www"} {
		if !IsStopWord(w) {
			t.Errorf("IsStopWord(%q) = false", w)
		}
	}
	for _, w := range []string{"kyoto", "data", "warehouse"} {
		if IsStopWord(w) {
			t.Errorf("IsStopWord(%q) = true", w)
		}
	}
}

func TestStemKnownWords(t *testing.T) {
	// Reference pairs from Porter's published vocabulary.
	cases := map[string]string{
		"caresses":       "caress",
		"ponies":         "poni",
		"ties":           "ti",
		"caress":         "caress",
		"cats":           "cat",
		"feed":           "feed",
		"agreed":         "agre",
		"plastered":      "plaster",
		"bled":           "bled",
		"motoring":       "motor",
		"sing":           "sing",
		"conflated":      "conflat",
		"troubled":       "troubl",
		"sized":          "size",
		"hopping":        "hop",
		"tanned":         "tan",
		"falling":        "fall",
		"hissing":        "hiss",
		"fizzed":         "fizz",
		"failing":        "fail",
		"filing":         "file",
		"happy":          "happi",
		"sky":            "sky",
		"relational":     "relat",
		"conditional":    "condit",
		"rational":       "ration",
		"valenci":        "valenc",
		"hesitanci":      "hesit",
		"digitizer":      "digit",
		"conformabli":    "conform",
		"radicalli":      "radic",
		"differentli":    "differ",
		"vileli":         "vile",
		"analogousli":    "analog",
		"vietnamization": "vietnam",
		"predication":    "predic",
		"operator":       "oper",
		"feudalism":      "feudal",
		"decisiveness":   "decis",
		"hopefulness":    "hope",
		"callousness":    "callous",
		"formaliti":      "formal",
		"sensitiviti":    "sensit",
		"sensibiliti":    "sensibl",
		"triplicate":     "triplic",
		"formative":      "form",
		"formalize":      "formal",
		"electriciti":    "electr",
		"electrical":     "electr",
		"hopeful":        "hope",
		"goodness":       "good",
		"revival":        "reviv",
		"allowance":      "allow",
		"inference":      "infer",
		"airliner":       "airlin",
		"gyroscopic":     "gyroscop",
		"adjustable":     "adjust",
		"defensible":     "defens",
		"irritant":       "irrit",
		"replacement":    "replac",
		"adjustment":     "adjust",
		"dependent":      "depend",
		"adoption":       "adopt",
		"homologou":      "homolog",
		"communism":      "commun",
		"activate":       "activ",
		"angulariti":     "angular",
		"homologous":     "homolog",
		"effective":      "effect",
		"bowdlerize":     "bowdler",
		"probate":        "probat",
		"rate":           "rate",
		"cease":          "ceas",
		"controll":       "control",
		"roll":           "roll",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStemShortWordsUnchanged(t *testing.T) {
	for _, w := range []string{"", "a", "ab", "is"} {
		if got := Stem(w); got != w {
			t.Errorf("Stem(%q) = %q, want unchanged", w, got)
		}
	}
}

func TestStemIdempotentOnCommonWords(t *testing.T) {
	// Stemming is not idempotent for every English word, but it must be
	// for the words CBFWW uses in its own vocabulary generators, so that
	// query-time and index-time processing agree.
	// (Porter is not idempotent on every string — e.g. "warehous" stems
	// further to "wareh" — but index-time and query-time both apply exactly
	// one pass, so only single-pass agreement matters; these dictionary
	// words must be stable so vocabulary generators can use them.)
	for _, w := range []string{"kyoto", "station", "data",
		"travel", "bus", "shinkansen", "stream", "cluster"} {
		once := Stem(w)
		twice := Stem(once)
		if once != twice {
			t.Errorf("Stem not idempotent for %q: %q -> %q", w, once, twice)
		}
	}
}

func TestStemAll(t *testing.T) {
	got := StemAll([]string{"Traveling", "STATIONS"})
	want := []string{"travel", "station"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("StemAll = %v, want %v", got, want)
	}
}
