// Package text is the information-retrieval substrate of CBFWW: tokenizer,
// stop-word filtering, Porter stemming, term dictionaries, sparse TF-IDF
// vectors with cosine similarity, and an inverted index with postings.
//
// Section 5 of the paper evaluates document content "on the basis of
// techniques in information retrieval (IR), such as vector space model (VSM)
// and TF-IDF scoring scheme"; this package provides exactly those techniques
// for the Semantic Region Manager, the Topic Manager and the query engine's
// MENTION operator.
package text

import (
	"strings"
	"unicode"
)

// Tokenize splits s into lower-cased word tokens. A token is a maximal run
// of letters or digits; everything else separates tokens. Markup tags
// (<...>) are stripped first so raw HTML bodies can be fed directly.
func Tokenize(s string) []string {
	s = StripTags(s)
	tokens := make([]string, 0, len(s)/6)
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			tokens = append(tokens, b.String())
			b.Reset()
		}
	}
	for _, r := range s {
		switch {
		case unicode.IsLetter(r):
			b.WriteRune(unicode.ToLower(r))
		case unicode.IsDigit(r):
			b.WriteRune(r)
		default:
			flush()
		}
	}
	flush()
	return tokens
}

// StripTags removes <...> runs from s. It is a tokenizer aid, not an HTML
// parser: unterminated tags swallow the rest of the string, matching what a
// browser-oblivious indexer should do with malformed markup.
func StripTags(s string) string {
	if !strings.ContainsRune(s, '<') {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	depth := 0
	for _, r := range s {
		switch {
		case r == '<':
			depth++
		case r == '>':
			if depth > 0 {
				depth--
				// Tags act as token separators.
				b.WriteByte(' ')
			} else {
				b.WriteRune(r)
			}
		case depth == 0:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// defaultStopWords is the stop list applied by Terms. It is the classic
// short English list; web-navigation terms (click, home, next) are included
// because anchor texts are dominated by them and they carry no topical
// signal for semantic regions.
var defaultStopWords = map[string]bool{
	"a": true, "an": true, "and": true, "are": true, "as": true, "at": true,
	"be": true, "but": true, "by": true, "for": true, "from": true,
	"has": true, "have": true, "he": true, "her": true, "his": true,
	"if": true, "in": true, "is": true, "it": true, "its": true,
	"not": true, "of": true, "on": true, "or": true, "s": true,
	"she": true, "t": true, "that": true, "the": true, "their": true,
	"them": true, "there": true, "they": true, "this": true, "to": true,
	"was": true, "were": true, "which": true, "while": true, "will": true,
	"with": true, "you": true, "your": true,
	// Web-navigation chrome.
	"click": true, "here": true, "home": true, "next": true, "prev": true,
	"page": true, "www": true, "http": true, "https": true, "html": true,
}

// IsStopWord reports whether the (already lower-cased) token is on the
// default stop list.
func IsStopWord(tok string) bool { return defaultStopWords[tok] }

// Terms tokenizes s and returns the stemmed, stop-word-free term sequence —
// the canonical preprocessing pipeline used everywhere in CBFWW.
func Terms(s string) []string {
	toks := Tokenize(s)
	out := toks[:0]
	for _, t := range toks {
		if IsStopWord(t) {
			continue
		}
		t = Stem(t)
		if t == "" || IsStopWord(t) {
			continue
		}
		out = append(out, t)
	}
	return out
}

// TermCounts returns the multiplicity of each term in the canonical term
// sequence of s.
func TermCounts(s string) map[string]int {
	counts := make(map[string]int)
	for _, t := range Terms(s) {
		counts[t]++
	}
	return counts
}
