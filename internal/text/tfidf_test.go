package text

import (
	"fmt"
	"math"
	"sync"
	"testing"
)

func TestCorpusCounts(t *testing.T) {
	c := NewCorpus()
	if c.NumDocs() != 0 || c.NumTerms() != 0 {
		t.Fatal("fresh corpus not empty")
	}
	c.Add("kyoto station travel")
	c.Add("kyoto bus")
	if c.NumDocs() != 2 {
		t.Errorf("NumDocs = %d", c.NumDocs())
	}
	if c.NumTerms() != 4 {
		t.Errorf("NumTerms = %d, want 4 (kyoto, station, travel, bu)", c.NumTerms())
	}
}

func TestIDFOrdering(t *testing.T) {
	c := NewCorpus()
	for i := 0; i < 10; i++ {
		c.Add(fmt.Sprintf("common doc%d", i))
	}
	c.Add("rare common")
	if got, want := c.IDF("common"), c.IDF("rare"); got >= want {
		t.Errorf("IDF(common)=%v should be < IDF(rare)=%v", got, want)
	}
	// Unseen terms get maximal IDF.
	if c.IDF("neverseen") < c.IDF("rare") {
		t.Error("unseen term should have max IDF")
	}
}

func TestTFIDFNormalized(t *testing.T) {
	c := NewCorpus()
	tf := c.Add("kyoto kyoto station")
	v := c.TFIDF(tf)
	if math.Abs(v.Norm()-1) > 1e-12 {
		t.Errorf("TFIDF norm = %v, want 1", v.Norm())
	}
	// kyoto appears twice: its weight must exceed station's despite equal IDF.
	kid, _ := c.Dict().Lookup("kyoto")
	sid, _ := c.Dict().Lookup("station")
	if v.Get(kid) <= v.Get(sid) {
		t.Errorf("tf dampening broken: kyoto=%v station=%v", v.Get(kid), v.Get(sid))
	}
}

func TestVectorizeNewMatchesAddPlusTFIDF(t *testing.T) {
	c1, c2 := NewCorpus(), NewCorpus()
	doc := "data stream systems process data"
	v1 := c1.VectorizeNew(doc)
	v2 := c2.TFIDF(c2.Add(doc))
	if v1.Len() != v2.Len() {
		t.Fatalf("different support: %d vs %d", v1.Len(), v2.Len())
	}
	// TermIDs are assigned in map-iteration order and differ between the
	// two corpora; compare weights by term name instead.
	v1.ForEach(func(k TermID, x float64) {
		term := c1.Dict().Term(k)
		k2, ok := c2.Dict().Lookup(term)
		if !ok {
			t.Fatalf("term %q missing from second corpus", term)
		}
		if math.Abs(x-v2.Get(k2)) > 1e-12 {
			t.Errorf("mismatch at %q: %v vs %v", term, x, v2.Get(k2))
		}
	})
}

func TestVectorizeDoesNotCount(t *testing.T) {
	c := NewCorpus()
	c.Add("kyoto")
	before := c.NumDocs()
	_ = c.Vectorize("kyoto station")
	if c.NumDocs() != before {
		t.Error("Vectorize changed NumDocs")
	}
	// Two queries about the same unseen topic must be similar.
	q1 := c.Vectorize("shinkansen superexpress")
	q2 := c.Vectorize("shinkansen superexpress access")
	if q1.Cosine(q2) <= 0.5 {
		t.Errorf("unseen-term queries dissimilar: cos=%v", q1.Cosine(q2))
	}
}

func TestWeightedVectorStressesTitle(t *testing.T) {
	c := NewCorpus()
	// Seed corpus so IDFs are comparable.
	c.Add("kyoto station travel bus shinkansen business office location")
	v := c.WeightedVector("kyoto travel", "business office", 3)
	if math.Abs(v.Norm()-1) > 1e-12 {
		t.Errorf("WeightedVector not normalized: %v", v.Norm())
	}
	kid, _ := c.Dict().Lookup("kyoto")
	bid, _ := c.Dict().Lookup("busi")
	if v.Get(kid) <= v.Get(bid) {
		t.Errorf("title term kyoto (%v) should outweigh body term business (%v)", v.Get(kid), v.Get(bid))
	}
	// omega < 1 is clamped to 1: title and body weigh equally then.
	v2 := c.WeightedVector("kyoto", "osaka", 0.1)
	oid, _ := c.Dict().Lookup("osaka")
	kw, ow := v2.Get(kid), v2.Get(oid)
	// Equal tf, IDF may differ (osaka unseen has higher IDF), so just check
	// the title did not get *less* than a fair share after clamping.
	if kw <= 0 || ow <= 0 {
		t.Errorf("weights missing: kyoto=%v osaka=%v", kw, ow)
	}
}

// §5.3 scenario: two logical documents share the terminal document but have
// different anchor-text titles; the weighted vectors must distinguish them.
func TestWeightedVectorDistinguishesPaths(t *testing.T) {
	c := NewCorpus()
	for i := 0; i < 5; i++ {
		c.Add("kyoto station shinkansen superexpress access travel bus ntt office location japan")
	}
	body := "access to the shinkansen superexpress platform schedule"
	tourist := c.WeightedVector("travel in kyoto, list of bus stations, kyoto station", body, 3)
	business := c.WeightedVector("ntt western japan, kyoto office, location", body, 3)
	self := tourist.Cosine(tourist)
	cross := tourist.Cosine(business)
	if cross >= self {
		t.Fatalf("cross similarity %v >= self %v", cross, self)
	}
	if cross > 0.95 {
		t.Errorf("paths to same terminal indistinguishable: cos=%v", cross)
	}
}

func TestCorpusConcurrentAdd(t *testing.T) {
	c := NewCorpus()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c.VectorizeNew(fmt.Sprintf("doc %d %d kyoto data stream", g, i))
			}
		}(g)
	}
	wg.Wait()
	if c.NumDocs() != 800 {
		t.Errorf("NumDocs = %d, want 800", c.NumDocs())
	}
}
