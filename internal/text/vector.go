package text

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// TermID is a dense integer assigned to a term by a Dictionary. Sparse
// vectors are keyed by TermID rather than string to keep them small and
// comparisons fast.
type TermID int32

// Dictionary maps terms to dense TermIDs and back. It only grows; terms are
// never removed, matching the warehouse's "store everything" stance. Safe
// for concurrent use: one dictionary is shared by the corpus and every
// index segment, and since the lock-striped warehouse no longer serializes
// their callers against each other, the dictionary synchronizes itself.
type Dictionary struct {
	mu    sync.RWMutex
	ids   map[string]TermID
	terms []string
}

// NewDictionary returns an empty dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{ids: make(map[string]TermID)}
}

// ID returns the TermID for term, assigning a fresh one if unseen.
func (d *Dictionary) ID(term string) TermID {
	d.mu.RLock()
	id, ok := d.ids[term]
	d.mu.RUnlock()
	if ok {
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok := d.ids[term]; ok {
		// Another writer assigned it between our two lock acquisitions.
		return id
	}
	id = TermID(len(d.terms))
	d.ids[term] = id
	d.terms = append(d.terms, term)
	return id
}

// Lookup returns the TermID for term without assigning, and whether it
// exists.
func (d *Dictionary) Lookup(term string) (TermID, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	id, ok := d.ids[term]
	return id, ok
}

// Term returns the term for id; it panics on an ID this dictionary never
// issued, since that is always a programming error.
func (d *Dictionary) Term(id TermID) string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if id < 0 || int(id) >= len(d.terms) {
		panic(fmt.Sprintf("text: Term(%d) out of range [0,%d)", id, len(d.terms)))
	}
	return d.terms[id]
}

// Len returns the number of distinct terms seen.
func (d *Dictionary) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.terms)
}

// Vector is a sparse term-weight vector in the vector space model. The zero
// value is the empty vector and is ready to use with the package functions;
// use make or NewVector before writing entries directly.
type Vector map[TermID]float64

// NewVector returns an empty vector with room for n entries.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	for k, x := range v {
		out[k] = x
	}
	return out
}

// Norm returns the Euclidean (L2) norm of v.
func (v Vector) Norm() float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Dot returns the inner product of v and u.
func (v Vector) Dot(u Vector) float64 {
	// Iterate the smaller map.
	if len(u) < len(v) {
		v, u = u, v
	}
	var s float64
	for k, x := range v {
		if y, ok := u[k]; ok {
			s += x * y
		}
	}
	return s
}

// Cosine returns the cosine similarity of v and u in [0,1] for non-negative
// vectors. The cosine of anything with a zero vector is 0.
func (v Vector) Cosine(u Vector) float64 {
	nv, nu := v.Norm(), u.Norm()
	if nv == 0 || nu == 0 {
		return 0
	}
	c := v.Dot(u) / (nv * nu)
	// Guard against floating-point drift outside [-1, 1].
	return math.Max(-1, math.Min(1, c))
}

// Distance returns the Euclidean distance between v and u.
func (v Vector) Distance(u Vector) float64 {
	var s float64
	for k, x := range v {
		d := x - u[k]
		s += d * d
	}
	for k, y := range u {
		if _, ok := v[k]; !ok {
			s += y * y
		}
	}
	return math.Sqrt(s)
}

// AddScaled adds a*u into v in place and returns v.
func (v Vector) AddScaled(u Vector, a float64) Vector {
	for k, y := range u {
		v[k] += a * y
	}
	return v
}

// Scale multiplies every entry of v by a in place and returns v.
func (v Vector) Scale(a float64) Vector {
	for k := range v {
		v[k] *= a
	}
	return v
}

// Normalize scales v to unit L2 norm in place and returns v. The zero
// vector is returned unchanged.
func (v Vector) Normalize() Vector {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Prune removes entries with |weight| < eps, returning v. Pruning keeps
// centroid vectors compact as they absorb many documents.
func (v Vector) Prune(eps float64) Vector {
	for k, x := range v {
		if math.Abs(x) < eps {
			delete(v, k)
		}
	}
	return v
}

// Top returns the n highest-weighted term IDs in descending weight order
// (ties broken by TermID for determinism).
func (v Vector) Top(n int) []TermID {
	ids := make([]TermID, 0, len(v))
	for k := range v {
		ids = append(ids, k)
	}
	sort.Slice(ids, func(i, j int) bool {
		wi, wj := v[ids[i]], v[ids[j]]
		if wi != wj {
			return wi > wj
		}
		return ids[i] < ids[j]
	})
	if n < len(ids) {
		ids = ids[:n]
	}
	return ids
}

// String renders the vector's top terms for debugging, resolving IDs
// through the dictionary: "{kyoto:0.82 station:0.41 ...}".
func (v Vector) String(d *Dictionary, n int) string {
	var b strings.Builder
	b.WriteByte('{')
	for i, id := range v.Top(n) {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s:%.2f", d.Term(id), v[id])
	}
	b.WriteByte('}')
	return b.String()
}

// Mean returns the centroid (arithmetic mean) of the given vectors. The
// mean of no vectors is the empty vector.
func Mean(vectors []Vector) Vector {
	out := NewVector(0)
	if len(vectors) == 0 {
		return out
	}
	inv := 1 / float64(len(vectors))
	for _, v := range vectors {
		out.AddScaled(v, inv)
	}
	return out
}
