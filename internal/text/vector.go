package text

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// TermID is a dense integer assigned to a term by a Dictionary. Sparse
// vectors are keyed by TermID rather than string to keep them small and
// comparisons fast.
type TermID int32

// Dictionary maps terms to dense TermIDs and back. It only grows; terms are
// never removed, matching the warehouse's "store everything" stance. Safe
// for concurrent use: one dictionary is shared by the corpus and every
// index segment, and since the lock-striped warehouse no longer serializes
// their callers against each other, the dictionary synchronizes itself.
type Dictionary struct {
	mu    sync.RWMutex
	ids   map[string]TermID
	terms []string
}

// NewDictionary returns an empty dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{ids: make(map[string]TermID)}
}

// ID returns the TermID for term, assigning a fresh one if unseen.
func (d *Dictionary) ID(term string) TermID {
	d.mu.RLock()
	id, ok := d.ids[term]
	d.mu.RUnlock()
	if ok {
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok := d.ids[term]; ok {
		// Another writer assigned it between our two lock acquisitions.
		return id
	}
	id = TermID(len(d.terms))
	d.ids[term] = id
	d.terms = append(d.terms, term)
	return id
}

// Lookup returns the TermID for term without assigning, and whether it
// exists.
func (d *Dictionary) Lookup(term string) (TermID, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	id, ok := d.ids[term]
	return id, ok
}

// Term returns the term for id; it panics on an ID this dictionary never
// issued, since that is always a programming error.
func (d *Dictionary) Term(id TermID) string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if id < 0 || int(id) >= len(d.terms) {
		panic(fmt.Sprintf("text: Term(%d) out of range [0,%d)", id, len(d.terms)))
	}
	return d.terms[id]
}

// Len returns the number of distinct terms seen.
func (d *Dictionary) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.terms)
}

// Vector is a sparse term-weight vector in the vector space model, stored
// as parallel slices sorted by TermID with a cached L2 norm. Vectors are
// immutable values: every arithmetic method returns a new vector, so
// sharing one across goroutines (centroids, profiles, page states) needs
// no synchronization and Clone is free. Build one with a Builder; the zero
// value is the empty vector.
type Vector struct {
	ids  []TermID
	ws   []float64
	norm float64
}

// makeVector wraps sorted parallel slices into a Vector, computing the
// cached norm. The slices must be id-sorted and must not be mutated after.
func makeVector(ids []TermID, ws []float64) Vector {
	var s float64
	for _, x := range ws {
		s += x * x
	}
	return Vector{ids: ids, ws: ws, norm: math.Sqrt(s)}
}

// Builder is a construction-time accumulator for sparse vectors: a plain
// map, so repeated additions stay O(1), converted once into the sorted
// immutable Vector form. Not safe for concurrent use.
type Builder map[TermID]float64

// NewBuilder returns an empty builder.
func NewBuilder() Builder { return make(Builder) }

// Add accumulates w onto the term's weight.
func (b Builder) Add(id TermID, w float64) { b[id] += w }

// Set overwrites the term's weight.
func (b Builder) Set(id TermID, w float64) { b[id] = w }

// AddScaled accumulates a*v into the builder.
func (b Builder) AddScaled(v Vector, a float64) {
	for i, id := range v.ids {
		b[id] += a * v.ws[i]
	}
}

// Vector freezes the builder into a sorted sparse vector. Entries with
// exactly zero weight are dropped. The builder remains usable afterwards.
func (b Builder) Vector() Vector {
	ids := make([]TermID, 0, len(b))
	for id, w := range b {
		if w != 0 {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	ws := make([]float64, len(ids))
	for i, id := range ids {
		ws[i] = b[id]
	}
	return makeVector(ids, ws)
}

// Top returns the n highest-weighted term IDs in the builder, in
// descending weight order (ties broken by TermID for determinism).
func (b Builder) Top(n int) []TermID {
	ids := make([]TermID, 0, len(b))
	for id := range b {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		wi, wj := b[ids[i]], b[ids[j]]
		if wi != wj {
			return wi > wj
		}
		return ids[i] < ids[j]
	})
	if n < len(ids) {
		ids = ids[:n]
	}
	return ids
}

// Len returns the number of non-zero entries.
func (v Vector) Len() int { return len(v.ids) }

// Get returns the weight of id (0 for absent terms) by binary search.
func (v Vector) Get(id TermID) float64 {
	i := sort.Search(len(v.ids), func(i int) bool { return v.ids[i] >= id })
	if i < len(v.ids) && v.ids[i] == id {
		return v.ws[i]
	}
	return 0
}

// ForEach calls f for every (term, weight) entry in ascending TermID order.
func (v Vector) ForEach(f func(TermID, float64)) {
	for i, id := range v.ids {
		f(id, v.ws[i])
	}
}

// Clone returns an independent copy of v. Vectors are immutable, so this
// shares the underlying storage and costs nothing; it survives for callers
// that want to document ownership transfer.
func (v Vector) Clone() Vector { return v }

// Norm returns the Euclidean (L2) norm of v. It is cached at construction,
// so calling it is free.
func (v Vector) Norm() float64 { return v.norm }

// Dot returns the inner product of v and u via a merge join over the two
// sorted id slices.
func (v Vector) Dot(u Vector) float64 {
	var s float64
	i, j := 0, 0
	for i < len(v.ids) && j < len(u.ids) {
		switch {
		case v.ids[i] < u.ids[j]:
			i++
		case v.ids[i] > u.ids[j]:
			j++
		default:
			s += v.ws[i] * u.ws[j]
			i++
			j++
		}
	}
	return s
}

// Cosine returns the cosine similarity of v and u in [0,1] for non-negative
// vectors. The cosine of anything with a zero vector is 0.
func (v Vector) Cosine(u Vector) float64 {
	if v.norm == 0 || u.norm == 0 {
		return 0
	}
	c := v.Dot(u) / (v.norm * u.norm)
	// Guard against floating-point drift outside [-1, 1].
	return math.Max(-1, math.Min(1, c))
}

// Distance returns the Euclidean distance between v and u (merge join).
func (v Vector) Distance(u Vector) float64 {
	var s float64
	i, j := 0, 0
	for i < len(v.ids) && j < len(u.ids) {
		switch {
		case v.ids[i] < u.ids[j]:
			s += v.ws[i] * v.ws[i]
			i++
		case v.ids[i] > u.ids[j]:
			s += u.ws[j] * u.ws[j]
			j++
		default:
			d := v.ws[i] - u.ws[j]
			s += d * d
			i++
			j++
		}
	}
	for ; i < len(v.ids); i++ {
		s += v.ws[i] * v.ws[i]
	}
	for ; j < len(u.ids); j++ {
		s += u.ws[j] * u.ws[j]
	}
	return math.Sqrt(s)
}

// AddScaled returns v + a*u as a new vector (merge join).
func (v Vector) AddScaled(u Vector, a float64) Vector {
	ids := make([]TermID, 0, len(v.ids)+len(u.ids))
	ws := make([]float64, 0, len(v.ids)+len(u.ids))
	i, j := 0, 0
	for i < len(v.ids) && j < len(u.ids) {
		switch {
		case v.ids[i] < u.ids[j]:
			ids = append(ids, v.ids[i])
			ws = append(ws, v.ws[i])
			i++
		case v.ids[i] > u.ids[j]:
			ids = append(ids, u.ids[j])
			ws = append(ws, a*u.ws[j])
			j++
		default:
			ids = append(ids, v.ids[i])
			ws = append(ws, v.ws[i]+a*u.ws[j])
			i++
			j++
		}
	}
	for ; i < len(v.ids); i++ {
		ids = append(ids, v.ids[i])
		ws = append(ws, v.ws[i])
	}
	for ; j < len(u.ids); j++ {
		ids = append(ids, u.ids[j])
		ws = append(ws, a*u.ws[j])
	}
	return makeVector(ids, ws)
}

// Scale returns a*v as a new vector.
func (v Vector) Scale(a float64) Vector {
	ws := make([]float64, len(v.ws))
	for i, x := range v.ws {
		ws[i] = a * x
	}
	return Vector{ids: v.ids, ws: ws, norm: math.Abs(a) * v.norm}
}

// Normalize returns v scaled to unit L2 norm. The zero vector is returned
// unchanged.
func (v Vector) Normalize() Vector {
	if v.norm == 0 {
		return v
	}
	return v.Scale(1 / v.norm)
}

// Prune returns v without entries of |weight| < eps. Pruning keeps
// centroid vectors compact as they absorb many documents.
func (v Vector) Prune(eps float64) Vector {
	keep := 0
	for _, x := range v.ws {
		if math.Abs(x) >= eps {
			keep++
		}
	}
	if keep == len(v.ids) {
		return v
	}
	ids := make([]TermID, 0, keep)
	ws := make([]float64, 0, keep)
	for i, x := range v.ws {
		if math.Abs(x) >= eps {
			ids = append(ids, v.ids[i])
			ws = append(ws, x)
		}
	}
	return makeVector(ids, ws)
}

// Top returns the n highest-weighted term IDs in descending weight order
// (ties broken by TermID for determinism).
func (v Vector) Top(n int) []TermID {
	ids := append([]TermID(nil), v.ids...)
	sort.Slice(ids, func(i, j int) bool {
		wi, wj := v.Get(ids[i]), v.Get(ids[j])
		if wi != wj {
			return wi > wj
		}
		return ids[i] < ids[j]
	})
	if n < len(ids) {
		ids = ids[:n]
	}
	return ids
}

// String renders the vector's top terms for debugging, resolving IDs
// through the dictionary: "{kyoto:0.82 station:0.41 ...}".
func (v Vector) String(d *Dictionary, n int) string {
	var b strings.Builder
	b.WriteByte('{')
	for i, id := range v.Top(n) {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s:%.2f", d.Term(id), v.Get(id))
	}
	b.WriteByte('}')
	return b.String()
}

// Mean returns the centroid (arithmetic mean) of the given vectors. The
// mean of no vectors is the empty vector.
func Mean(vectors []Vector) Vector {
	if len(vectors) == 0 {
		return Vector{}
	}
	b := NewBuilder()
	inv := 1 / float64(len(vectors))
	for _, v := range vectors {
		b.AddScaled(v, inv)
	}
	return b.Vector()
}
