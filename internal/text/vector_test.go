package text

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDictionaryRoundTrip(t *testing.T) {
	d := NewDictionary()
	a := d.ID("kyoto")
	b := d.ID("station")
	if a == b {
		t.Fatal("distinct terms share an ID")
	}
	if d.ID("kyoto") != a {
		t.Error("ID not stable")
	}
	if d.Term(a) != "kyoto" || d.Term(b) != "station" {
		t.Error("Term round-trip failed")
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d, want 2", d.Len())
	}
	if _, ok := d.Lookup("missing"); ok {
		t.Error("Lookup(missing) found something")
	}
	if d.Len() != 2 {
		t.Error("Lookup must not assign")
	}
}

func TestDictionaryTermPanics(t *testing.T) {
	d := NewDictionary()
	defer func() {
		if recover() == nil {
			t.Error("Term(99) did not panic")
		}
	}()
	d.Term(99)
}

func vec(pairs ...float64) Vector {
	v := NewVector(len(pairs) / 2)
	for i := 0; i+1 < len(pairs); i += 2 {
		v[TermID(pairs[i])] = pairs[i+1]
	}
	return v
}

func TestVectorDotAndNorm(t *testing.T) {
	a := vec(0, 1, 1, 2)
	b := vec(1, 3, 2, 4)
	if got := a.Dot(b); got != 6 {
		t.Errorf("Dot = %v, want 6", got)
	}
	if got := b.Dot(a); got != 6 {
		t.Errorf("Dot not symmetric: %v", got)
	}
	if got := a.Norm(); math.Abs(got-math.Sqrt(5)) > 1e-12 {
		t.Errorf("Norm = %v", got)
	}
}

func TestVectorCosine(t *testing.T) {
	a := vec(0, 1)
	if got := a.Cosine(a); math.Abs(got-1) > 1e-12 {
		t.Errorf("self cosine = %v, want 1", got)
	}
	b := vec(1, 1)
	if got := a.Cosine(b); got != 0 {
		t.Errorf("orthogonal cosine = %v, want 0", got)
	}
	if got := a.Cosine(NewVector(0)); got != 0 {
		t.Errorf("cosine with zero vector = %v, want 0", got)
	}
}

func TestVectorDistance(t *testing.T) {
	a := vec(0, 3)
	b := vec(1, 4)
	if got := a.Distance(b); math.Abs(got-5) > 1e-12 {
		t.Errorf("Distance = %v, want 5", got)
	}
	if got := a.Distance(a); got != 0 {
		t.Errorf("self distance = %v", got)
	}
	if d1, d2 := a.Distance(b), b.Distance(a); math.Abs(d1-d2) > 1e-12 {
		t.Errorf("distance not symmetric: %v vs %v", d1, d2)
	}
}

func TestVectorMutators(t *testing.T) {
	v := vec(0, 1, 1, 2)
	v.AddScaled(vec(1, 1, 2, 3), 2)
	if v[0] != 1 || v[1] != 4 || v[2] != 6 {
		t.Errorf("AddScaled = %v", v)
	}
	v.Scale(0.5)
	if v[1] != 2 {
		t.Errorf("Scale = %v", v)
	}
	v.Normalize()
	if math.Abs(v.Norm()-1) > 1e-12 {
		t.Errorf("Normalize: norm = %v", v.Norm())
	}
	z := NewVector(0)
	z.Normalize() // must not panic or NaN
	if z.Norm() != 0 {
		t.Error("zero vector normalize changed norm")
	}
}

func TestVectorPrune(t *testing.T) {
	v := vec(0, 0.001, 1, 0.5, 2, -0.0001)
	v.Prune(0.01)
	if len(v) != 1 || v[1] != 0.5 {
		t.Errorf("Prune = %v", v)
	}
}

func TestVectorTopDeterministic(t *testing.T) {
	v := vec(5, 1, 3, 2, 7, 2, 1, 0.5)
	got := v.Top(3)
	// weight 2 tie between 3 and 7 broken by TermID.
	want := []TermID{3, 7, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Top = %v, want %v", got, want)
		}
	}
	if n := len(v.Top(100)); n != 4 {
		t.Errorf("Top(100) len = %d, want 4", n)
	}
}

func TestVectorClone(t *testing.T) {
	v := vec(0, 1)
	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Error("Clone aliases original")
	}
}

func TestMean(t *testing.T) {
	m := Mean([]Vector{vec(0, 2), vec(0, 4, 1, 2)})
	if m[0] != 3 || m[1] != 1 {
		t.Errorf("Mean = %v", m)
	}
	if got := Mean(nil); len(got) != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
}

func TestVectorString(t *testing.T) {
	d := NewDictionary()
	v := NewVector(2)
	v[d.ID("kyoto")] = 0.8
	v[d.ID("station")] = 0.4
	got := v.String(d, 2)
	if got != "{kyoto:0.80 station:0.40}" {
		t.Errorf("String = %q", got)
	}
}

// Property: cosine similarity is always within [-1, 1] and symmetric.
func TestCosineProperty(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a, b := NewVector(len(xs)), NewVector(len(ys))
		for i, x := range xs {
			a[TermID(i%17)] += float64(x)
		}
		for i, y := range ys {
			b[TermID(i%17)] += float64(y)
		}
		c1, c2 := a.Cosine(b), b.Cosine(a)
		return c1 >= -1 && c1 <= 1 && math.Abs(c1-c2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: triangle inequality for Euclidean distance.
func TestDistanceTriangleProperty(t *testing.T) {
	f := func(xs, ys, zs []uint8) bool {
		mk := func(s []uint8) Vector {
			v := NewVector(len(s))
			for i, x := range s {
				v[TermID(i%11)] += float64(x)
			}
			return v
		}
		a, b, c := mk(xs), mk(ys), mk(zs)
		return a.Distance(c) <= a.Distance(b)+b.Distance(c)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
