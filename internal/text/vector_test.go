package text

import (
	"math"
	"testing"
	"testing/quick"

	"cbfww/internal/core"
)

func TestDictionaryRoundTrip(t *testing.T) {
	d := NewDictionary()
	a := d.ID("kyoto")
	b := d.ID("station")
	if a == b {
		t.Fatal("distinct terms share an ID")
	}
	if d.ID("kyoto") != a {
		t.Error("ID not stable")
	}
	if d.Term(a) != "kyoto" || d.Term(b) != "station" {
		t.Error("Term round-trip failed")
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d, want 2", d.Len())
	}
	if _, ok := d.Lookup("missing"); ok {
		t.Error("Lookup(missing) found something")
	}
	if d.Len() != 2 {
		t.Error("Lookup must not assign")
	}
}

func TestDictionaryTermPanics(t *testing.T) {
	d := NewDictionary()
	defer func() {
		if recover() == nil {
			t.Error("Term(99) did not panic")
		}
	}()
	d.Term(99)
}

func vec(pairs ...float64) Vector {
	b := NewBuilder()
	for i := 0; i+1 < len(pairs); i += 2 {
		b.Set(TermID(pairs[i]), pairs[i+1])
	}
	return b.Vector()
}

func TestVectorDotAndNorm(t *testing.T) {
	a := vec(0, 1, 1, 2)
	b := vec(1, 3, 2, 4)
	if got := a.Dot(b); got != 6 {
		t.Errorf("Dot = %v, want 6", got)
	}
	if got := b.Dot(a); got != 6 {
		t.Errorf("Dot not symmetric: %v", got)
	}
	if got := a.Norm(); math.Abs(got-math.Sqrt(5)) > 1e-12 {
		t.Errorf("Norm = %v", got)
	}
}

func TestVectorGet(t *testing.T) {
	v := vec(3, 1.5, 9, 2.5)
	if got := v.Get(3); got != 1.5 {
		t.Errorf("Get(3) = %v", got)
	}
	if got := v.Get(9); got != 2.5 {
		t.Errorf("Get(9) = %v", got)
	}
	if got := v.Get(4); got != 0 {
		t.Errorf("Get(absent) = %v, want 0", got)
	}
	if v.Len() != 2 {
		t.Errorf("Len = %d, want 2", v.Len())
	}
}

func TestVectorForEachSorted(t *testing.T) {
	v := vec(7, 1, 2, 2, 5, 3)
	var ids []TermID
	v.ForEach(func(id TermID, w float64) {
		ids = append(ids, id)
		if w != v.Get(id) {
			t.Errorf("ForEach weight mismatch at %d", id)
		}
	})
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatalf("ForEach not in ascending TermID order: %v", ids)
		}
	}
}

func TestBuilderAccumulates(t *testing.T) {
	b := NewBuilder()
	b.Add(1, 2)
	b.Add(1, 3)
	b.Set(4, 7)
	b.Add(9, 0) // exact zero must be dropped
	b.AddScaled(vec(1, 1, 2, 10), 2)
	v := b.Vector()
	if got := v.Get(1); got != 7 {
		t.Errorf("builder weight(1) = %v, want 7", got)
	}
	if got := v.Get(2); got != 20 {
		t.Errorf("builder weight(2) = %v, want 20", got)
	}
	if got := v.Get(4); got != 7 {
		t.Errorf("builder weight(4) = %v, want 7", got)
	}
	if v.Len() != 3 {
		t.Errorf("Len = %d, want 3 (zero entry dropped)", v.Len())
	}
	top := b.Top(2)
	if len(top) != 2 || top[0] != 2 {
		t.Errorf("Builder.Top = %v", top)
	}
}

func TestVectorCosine(t *testing.T) {
	a := vec(0, 1)
	if got := a.Cosine(a); math.Abs(got-1) > 1e-12 {
		t.Errorf("self cosine = %v, want 1", got)
	}
	b := vec(1, 1)
	if got := a.Cosine(b); got != 0 {
		t.Errorf("orthogonal cosine = %v, want 0", got)
	}
	if got := a.Cosine(Vector{}); got != 0 {
		t.Errorf("cosine with zero vector = %v, want 0", got)
	}
}

func TestVectorDistance(t *testing.T) {
	a := vec(0, 3)
	b := vec(1, 4)
	if got := a.Distance(b); math.Abs(got-5) > 1e-12 {
		t.Errorf("Distance = %v, want 5", got)
	}
	if got := a.Distance(a); got != 0 {
		t.Errorf("self distance = %v", got)
	}
	if d1, d2 := a.Distance(b), b.Distance(a); math.Abs(d1-d2) > 1e-12 {
		t.Errorf("distance not symmetric: %v vs %v", d1, d2)
	}
}

func TestVectorArithmetic(t *testing.T) {
	v := vec(0, 1, 1, 2)
	v = v.AddScaled(vec(1, 1, 2, 3), 2)
	if v.Get(0) != 1 || v.Get(1) != 4 || v.Get(2) != 6 {
		t.Errorf("AddScaled = %v/%v/%v", v.Get(0), v.Get(1), v.Get(2))
	}
	v = v.Scale(0.5)
	if v.Get(1) != 2 {
		t.Errorf("Scale: weight(1) = %v", v.Get(1))
	}
	v = v.Normalize()
	if math.Abs(v.Norm()-1) > 1e-12 {
		t.Errorf("Normalize: norm = %v", v.Norm())
	}
	z := Vector{}.Normalize() // must not panic or NaN
	if z.Norm() != 0 {
		t.Error("zero vector normalize changed norm")
	}
}

// The arithmetic methods return new vectors; the receiver must be
// unchanged (immutability is what makes sharing vectors across shards and
// goroutines safe).
func TestVectorImmutable(t *testing.T) {
	v := vec(0, 1, 1, 2)
	_ = v.AddScaled(vec(0, 5), 1)
	_ = v.Scale(10)
	_ = v.Normalize()
	_ = v.Prune(10)
	if v.Get(0) != 1 || v.Get(1) != 2 || math.Abs(v.Norm()-math.Sqrt(5)) > 1e-12 {
		t.Errorf("receiver mutated: %v/%v norm %v", v.Get(0), v.Get(1), v.Norm())
	}
}

func TestVectorPrune(t *testing.T) {
	v := vec(0, 0.001, 1, 0.5, 2, -0.0001)
	v = v.Prune(0.01)
	if v.Len() != 1 || v.Get(1) != 0.5 {
		t.Errorf("Prune: len %d, weight(1) %v", v.Len(), v.Get(1))
	}
	if math.Abs(v.Norm()-0.5) > 1e-12 {
		t.Errorf("Prune must recompute the cached norm: %v", v.Norm())
	}
}

func TestVectorTopDeterministic(t *testing.T) {
	v := vec(5, 1, 3, 2, 7, 2, 1, 0.5)
	got := v.Top(3)
	// weight 2 tie between 3 and 7 broken by TermID.
	want := []TermID{3, 7, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Top = %v, want %v", got, want)
		}
	}
	if n := len(v.Top(100)); n != 4 {
		t.Errorf("Top(100) len = %d, want 4", n)
	}
}

func TestMean(t *testing.T) {
	m := Mean([]Vector{vec(0, 2), vec(0, 4, 1, 2)})
	if m.Get(0) != 3 || m.Get(1) != 1 {
		t.Errorf("Mean = %v/%v", m.Get(0), m.Get(1))
	}
	if got := Mean(nil); got.Len() != 0 {
		t.Errorf("Mean(nil) has %d entries", got.Len())
	}
}

func TestVectorString(t *testing.T) {
	d := NewDictionary()
	b := NewBuilder()
	b.Set(d.ID("kyoto"), 0.8)
	b.Set(d.ID("station"), 0.4)
	got := b.Vector().String(d, 2)
	if got != "{kyoto:0.80 station:0.40}" {
		t.Errorf("String = %q", got)
	}
}

// Property: cosine similarity is always within [-1, 1] and symmetric.
func TestCosineProperty(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		ab, bb := NewBuilder(), NewBuilder()
		for i, x := range xs {
			ab.Add(TermID(i%17), float64(x))
		}
		for i, y := range ys {
			bb.Add(TermID(i%17), float64(y))
		}
		a, b := ab.Vector(), bb.Vector()
		c1, c2 := a.Cosine(b), b.Cosine(a)
		return c1 >= -1 && c1 <= 1 && math.Abs(c1-c2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: triangle inequality for Euclidean distance.
func TestDistanceTriangleProperty(t *testing.T) {
	f := func(xs, ys, zs []uint8) bool {
		mk := func(s []uint8) Vector {
			b := NewBuilder()
			for i, x := range s {
				b.Add(TermID(i%11), float64(x))
			}
			return b.Vector()
		}
		a, b, c := mk(xs), mk(ys), mk(zs)
		return a.Distance(c) <= a.Distance(b)+b.Distance(c)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Dot/Distance agree with a map-based reference implementation.
func TestMergeJoinMatchesReference(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		am, bm := map[TermID]float64{}, map[TermID]float64{}
		ab, bb := NewBuilder(), NewBuilder()
		for i, x := range xs {
			if x == 0 {
				continue
			}
			am[TermID(i%13)] += float64(x)
			ab.Add(TermID(i%13), float64(x))
		}
		for i, y := range ys {
			if y == 0 {
				continue
			}
			bm[TermID(i%13)] += float64(y)
			bb.Add(TermID(i%13), float64(y))
		}
		var dot, dist2 float64
		for k, x := range am {
			dot += x * bm[k]
			d := x - bm[k]
			dist2 += d * d
		}
		for k, y := range bm {
			if _, ok := am[k]; !ok {
				dist2 += y * y
			}
		}
		a, b := ab.Vector(), bb.Vector()
		return math.Abs(a.Dot(b)-dot) < 1e-6 &&
			math.Abs(a.Distance(b)-math.Sqrt(dist2)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSelectTop(t *testing.T) {
	s := []Score{{Doc: 5, Value: 1}, {Doc: 1, Value: 3}, {Doc: 9, Value: 3}, {Doc: 2, Value: 0.5}, {Doc: 7, Value: 2}}
	got := SelectTop(append([]Score(nil), s...), 3)
	want := []Score{{Doc: 1, Value: 3}, {Doc: 9, Value: 3}, {Doc: 7, Value: 2}}
	if len(got) != len(want) {
		t.Fatalf("SelectTop len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SelectTop[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
	if got := SelectTop(append([]Score(nil), s...), 0); len(got) != 0 {
		t.Errorf("SelectTop(0) len = %d", len(got))
	}
	all := SelectTop(append([]Score(nil), s...), -1)
	if len(all) != len(s) || all[0].Doc != 1 || all[len(all)-1].Doc != 2 {
		t.Errorf("SelectTop(-1) = %+v", all)
	}
	big := SelectTop(append([]Score(nil), s...), 100)
	if len(big) != len(s) {
		t.Errorf("SelectTop(100) len = %d", len(big))
	}
}

// Property: bounded selection returns exactly the prefix of the full sort.
func TestSelectTopMatchesSort(t *testing.T) {
	f := func(vals []uint8, n uint8) bool {
		s := make([]Score, len(vals))
		for i, v := range vals {
			s[i] = Score{Doc: core.ObjectID(i), Value: float64(v % 7)}
		}
		full := SelectTop(append([]Score(nil), s...), -1)
		k := int(n) % (len(s) + 1)
		got := SelectTop(append([]Score(nil), s...), k)
		if len(got) != k {
			return false
		}
		for i := range got {
			if got[i] != full[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
