package text

import "strings"

// Stem reduces an English word to its stem using the Porter stemming
// algorithm (M.F. Porter, 1980). The input must already be lower-cased.
// Words of length <= 2 are returned unchanged, per the original paper.
func Stem(word string) string {
	if len(word) <= 2 {
		return word
	}
	w := []byte(word)
	w = step1a(w)
	w = step1b(w)
	w = step1c(w)
	w = step2(w)
	w = step3(w)
	w = step4(w)
	w = step5a(w)
	w = step5b(w)
	return string(w)
}

// isConsonant reports whether w[i] acts as a consonant in Porter's sense:
// vowels are a,e,i,o,u, and y is a vowel when preceded by a consonant.
func isConsonant(w []byte, i int) bool {
	switch w[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !isConsonant(w, i-1)
	default:
		return true
	}
}

// measure computes m, the number of VC (vowel-consonant) sequences in
// w[:end], i.e. the word form [C](VC)^m[V].
func measure(w []byte, end int) int {
	m := 0
	i := 0
	// Skip initial consonant run.
	for i < end && isConsonant(w, i) {
		i++
	}
	for {
		// Vowel run.
		for i < end && !isConsonant(w, i) {
			i++
		}
		if i >= end {
			return m
		}
		// Consonant run: one VC sequence complete.
		for i < end && isConsonant(w, i) {
			i++
		}
		m++
	}
}

// hasVowel reports whether w[:end] contains a vowel.
func hasVowel(w []byte, end int) bool {
	for i := 0; i < end; i++ {
		if !isConsonant(w, i) {
			return true
		}
	}
	return false
}

// endsDoubleConsonant reports whether w[:end] ends with a doubled consonant.
func endsDoubleConsonant(w []byte, end int) bool {
	if end < 2 {
		return false
	}
	return w[end-1] == w[end-2] && isConsonant(w, end-1)
}

// endsCVC reports whether w[:end] ends consonant-vowel-consonant where the
// final consonant is not w, x or y (Porter's *o condition).
func endsCVC(w []byte, end int) bool {
	if end < 3 {
		return false
	}
	if !isConsonant(w, end-3) || isConsonant(w, end-2) || !isConsonant(w, end-1) {
		return false
	}
	c := w[end-1]
	return c != 'w' && c != 'x' && c != 'y'
}

// hasSuffix reports whether w ends in suf.
func hasSuffix(w []byte, suf string) bool {
	return len(w) >= len(suf) && string(w[len(w)-len(suf):]) == suf
}

// replaceSuffix replaces the trailing suf with repl if measure of the stem
// is > m. It reports whether the suffix matched at all (regardless of m).
func replaceSuffix(w *[]byte, suf, repl string, m int) bool {
	if !hasSuffix(*w, suf) {
		return false
	}
	stem := len(*w) - len(suf)
	if measure(*w, stem) > m {
		*w = append((*w)[:stem], repl...)
	}
	return true
}

func step1a(w []byte) []byte {
	switch {
	case hasSuffix(w, "sses"):
		return w[:len(w)-2]
	case hasSuffix(w, "ies"):
		return w[:len(w)-2]
	case hasSuffix(w, "ss"):
		return w
	case hasSuffix(w, "s"):
		return w[:len(w)-1]
	}
	return w
}

func step1b(w []byte) []byte {
	if hasSuffix(w, "eed") {
		if measure(w, len(w)-3) > 0 {
			return w[:len(w)-1]
		}
		return w
	}
	matched := false
	if hasSuffix(w, "ed") && hasVowel(w, len(w)-2) {
		w = w[:len(w)-2]
		matched = true
	} else if hasSuffix(w, "ing") && hasVowel(w, len(w)-3) {
		w = w[:len(w)-3]
		matched = true
	}
	if !matched {
		return w
	}
	switch {
	case hasSuffix(w, "at"), hasSuffix(w, "bl"), hasSuffix(w, "iz"):
		return append(w, 'e')
	case endsDoubleConsonant(w, len(w)):
		c := w[len(w)-1]
		if c != 'l' && c != 's' && c != 'z' {
			return w[:len(w)-1]
		}
		return w
	case measure(w, len(w)) == 1 && endsCVC(w, len(w)):
		return append(w, 'e')
	}
	return w
}

func step1c(w []byte) []byte {
	if hasSuffix(w, "y") && hasVowel(w, len(w)-1) {
		w[len(w)-1] = 'i'
	}
	return w
}

// step2 maps double suffixes to single ones when m > 0.
func step2(w []byte) []byte {
	if len(w) < 3 {
		return w
	}
	// Keyed by penultimate letter as in Porter's original program to avoid
	// trying every suffix.
	switch w[len(w)-2] {
	case 'a':
		if replaceSuffix(&w, "ational", "ate", 0) {
			return w
		}
		replaceSuffix(&w, "tional", "tion", 0)
	case 'c':
		if replaceSuffix(&w, "enci", "ence", 0) {
			return w
		}
		replaceSuffix(&w, "anci", "ance", 0)
	case 'e':
		replaceSuffix(&w, "izer", "ize", 0)
	case 'l':
		if replaceSuffix(&w, "abli", "able", 0) {
			return w
		}
		if replaceSuffix(&w, "alli", "al", 0) {
			return w
		}
		if replaceSuffix(&w, "entli", "ent", 0) {
			return w
		}
		if replaceSuffix(&w, "eli", "e", 0) {
			return w
		}
		replaceSuffix(&w, "ousli", "ous", 0)
	case 'o':
		if replaceSuffix(&w, "ization", "ize", 0) {
			return w
		}
		if replaceSuffix(&w, "ation", "ate", 0) {
			return w
		}
		replaceSuffix(&w, "ator", "ate", 0)
	case 's':
		if replaceSuffix(&w, "alism", "al", 0) {
			return w
		}
		if replaceSuffix(&w, "iveness", "ive", 0) {
			return w
		}
		if replaceSuffix(&w, "fulness", "ful", 0) {
			return w
		}
		replaceSuffix(&w, "ousness", "ous", 0)
	case 't':
		if replaceSuffix(&w, "aliti", "al", 0) {
			return w
		}
		if replaceSuffix(&w, "iviti", "ive", 0) {
			return w
		}
		replaceSuffix(&w, "biliti", "ble", 0)
	}
	return w
}

func step3(w []byte) []byte {
	if len(w) < 3 {
		return w
	}
	switch w[len(w)-1] {
	case 'e':
		if replaceSuffix(&w, "icate", "ic", 0) {
			return w
		}
		if replaceSuffix(&w, "ative", "", 0) {
			return w
		}
		replaceSuffix(&w, "alize", "al", 0)
	case 'i':
		replaceSuffix(&w, "iciti", "ic", 0)
	case 'l':
		if replaceSuffix(&w, "ical", "ic", 0) {
			return w
		}
		replaceSuffix(&w, "ful", "", 0)
	case 's':
		replaceSuffix(&w, "ness", "", 0)
	}
	return w
}

// step4 drops residual suffixes when m > 1.
func step4(w []byte) []byte {
	suffixes := []string{
		"al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
		"ment", "ent", "ion", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
	}
	for _, suf := range suffixes {
		if !hasSuffix(w, suf) {
			continue
		}
		stem := len(w) - len(suf)
		if measure(w, stem) <= 1 {
			return w
		}
		if suf == "ion" {
			// "ion" only drops after s or t.
			if stem == 0 || (w[stem-1] != 's' && w[stem-1] != 't') {
				return w
			}
		}
		return w[:stem]
	}
	return w
}

func step5a(w []byte) []byte {
	if !hasSuffix(w, "e") {
		return w
	}
	m := measure(w, len(w)-1)
	if m > 1 || (m == 1 && !endsCVC(w, len(w)-1)) {
		return w[:len(w)-1]
	}
	return w
}

func step5b(w []byte) []byte {
	if hasSuffix(w, "ll") && measure(w, len(w)) > 1 {
		return w[:len(w)-1]
	}
	return w
}

// StemAll stems every word in the slice, returning a new slice.
func StemAll(words []string) []string {
	out := make([]string, len(words))
	for i, w := range words {
		out[i] = Stem(strings.ToLower(w))
	}
	return out
}
