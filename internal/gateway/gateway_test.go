package gateway

// End-to-end tests: the daemon serving over real sockets, a simweb origin
// behind it — in-process for the concurrency tests (a gated Origin makes
// miss storms deterministic), over HTTP via crawl.Requester for the full
// socket-to-socket chain.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cbfww/internal/core"
	"cbfww/internal/crawl"
	"cbfww/internal/simweb"
	"cbfww/internal/warehouse"
	"cbfww/internal/workload"
)

// gateOrigin wraps a simulated web as a warehouse.ContextOrigin whose
// fetches block on a gate until released — the deterministic way to hold a
// miss storm in flight.
type gateOrigin struct {
	web     *simweb.Web
	gate    chan struct{} // nil = always open
	fetches atomic.Int32  // origin fetches started
	// active/maxActive track the concurrency high-water mark, the
	// deterministic way to assert a bound without sleeping and hoping.
	active    atomic.Int32
	maxActive atomic.Int32
	// started, when non-nil, receives one token per fetch start — tests
	// synchronize on it instead of polling counters. Buffer it larger than
	// the fetch count so sends never block.
	started chan struct{}
}

func (o *gateOrigin) FetchCtx(ctx context.Context, url string) (simweb.FetchResult, error) {
	o.fetches.Add(1)
	n := o.active.Add(1)
	defer o.active.Add(-1)
	for {
		max := o.maxActive.Load()
		if n <= max || o.maxActive.CompareAndSwap(max, n) {
			break
		}
	}
	if o.started != nil {
		o.started <- struct{}{}
	}
	if o.gate != nil {
		select {
		case <-o.gate:
		case <-ctx.Done():
			return simweb.FetchResult{}, ctx.Err()
		}
	}
	return o.web.FetchCtx(ctx, url)
}

func (o *gateOrigin) Fetch(url string) (simweb.FetchResult, error) {
	return o.FetchCtx(context.Background(), url)
}

func (o *gateOrigin) HeadCtx(ctx context.Context, url string) (int, core.Time, error) {
	return o.web.HeadCtx(ctx, url)
}

func (o *gateOrigin) Head(url string) (int, core.Time, error) {
	return o.web.Head(url)
}

// testWeb generates a small deterministic web.
func testWeb(t *testing.T) *workload.GeneratedWeb {
	t.Helper()
	clock := core.NewSimClock(0)
	cfg := workload.DefaultWebConfig()
	cfg.Sites, cfg.PagesPerSite, cfg.Seed = 4, 12, 7
	g, err := workload.GenerateWeb(clock, cfg)
	if err != nil {
		t.Fatalf("GenerateWeb: %v", err)
	}
	return g
}

// newGatedGateway builds warehouse + server over a gated in-process origin.
func newGatedGateway(t *testing.T, cfg Config) (*Server, *gateOrigin, *workload.GeneratedWeb) {
	t.Helper()
	g := testWeb(t)
	origin := &gateOrigin{web: g.Web, gate: make(chan struct{})}
	wh, err := warehouse.New(warehouse.DefaultConfig(), core.NewSimClock(0), origin)
	if err != nil {
		t.Fatalf("warehouse.New: %v", err)
	}
	s, err := New(cfg, wh)
	if err != nil {
		t.Fatalf("gateway.New: %v", err)
	}
	return s, origin, g
}

func getJSON(t *testing.T, client *http.Client, url string, out any) int {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("decode %s: %v (body %q)", url, err, body)
		}
	}
	return resp.StatusCode
}

// TestEndToEndOverSockets drives the full chain: gateway socket -> warehouse
// -> crawl.Requester -> HTTP -> simweb origin socket.
func TestEndToEndOverSockets(t *testing.T) {
	g := testWeb(t)
	originSrv := httptest.NewServer(g.Web.Handler())
	defer originSrv.Close()
	addr := strings.TrimPrefix(originSrv.URL, "http://")
	req, err := crawl.NewRequester(crawl.DefaultConfig(), crawl.FixedResolver(addr))
	if err != nil {
		t.Fatalf("NewRequester: %v", err)
	}
	wh, err := warehouse.New(warehouse.DefaultConfig(), core.NewSimClock(0), req)
	if err != nil {
		t.Fatalf("warehouse.New: %v", err)
	}
	s, err := New(Config{Addr: "127.0.0.1:0"}, wh)
	if err != nil {
		t.Fatalf("gateway.New: %v", err)
	}
	if err := s.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	}()
	base := "http://" + s.Addr()
	client := &http.Client{Timeout: 30 * time.Second}

	// Liveness: a standalone daemon has nothing to complain about.
	var hz HealthzResponse
	if code := getJSON(t, client, base+"/healthz", &hz); code != http.StatusOK {
		t.Fatalf("healthz status = %d", code)
	}
	if hz.Status != "ok" || len(hz.Detail) != 0 {
		t.Fatalf("healthz = %+v, want plain ok", hz)
	}

	// Cold fetch, then hot hit of the same URL.
	url := g.PageURLs[0]
	var fr FetchResponse
	if code := getJSON(t, client, base+"/fetch?url="+url+"&user=alice", &fr); code != http.StatusOK {
		t.Fatalf("cold fetch status = %d", code)
	}
	if fr.Hit || fr.Source != "origin" {
		t.Fatalf("cold fetch: hit=%v source=%q, want miss from origin", fr.Hit, fr.Source)
	}
	if fr.Title == "" {
		t.Fatal("cold fetch returned empty title")
	}
	if code := getJSON(t, client, base+"/fetch?url="+url+"&user=alice", &fr); code != http.StatusOK {
		t.Fatalf("hot fetch status = %d", code)
	}
	if !fr.Hit {
		t.Fatal("second fetch of same URL was not a warehouse hit")
	}

	// Warm a few more pages so query/search have something to chew on.
	for _, u := range g.PageURLs[1:5] {
		if code := getJSON(t, client, base+"/fetch?url="+u+"&user=alice", nil); code != http.StatusOK {
			t.Fatalf("warm fetch %s = %d", u, code)
		}
	}

	// §4.3 popularity-aware query over POST.
	qresp, err := client.Post(base+"/query", "text/plain",
		strings.NewReader(`SELECT MFU 3 p.url, p.freq FROM Physical_Page p`))
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	qbody, _ := io.ReadAll(qresp.Body)
	qresp.Body.Close()
	if qresp.StatusCode != http.StatusOK {
		t.Fatalf("query status = %d (%s)", qresp.StatusCode, qbody)
	}
	var qout struct {
		Rows []QueryRow `json:"rows"`
	}
	if err := json.Unmarshal(qbody, &qout); err != nil {
		t.Fatalf("query decode: %v", err)
	}
	if len(qout.Rows) == 0 {
		t.Fatal("query returned no rows over a warmed warehouse")
	}

	// A broken query is a client error, not a 500.
	qresp, err = client.Post(base+"/query", "text/plain", strings.NewReader("SELECT FROM FROM"))
	if err != nil {
		t.Fatalf("bad query: %v", err)
	}
	io.Copy(io.Discard, qresp.Body)
	qresp.Body.Close()
	if qresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad query status = %d, want 400", qresp.StatusCode)
	}

	// Ranked search and recommendations decode cleanly.
	var sout struct {
		Tier string      `json:"tier"`
		Hits []SearchHit `json:"hits"`
	}
	if code := getJSON(t, client, base+"/search?q="+strings.Fields(fr.Title)[0], &sout); code != http.StatusOK {
		t.Fatalf("search status = %d", code)
	}
	var rout struct {
		Recommendations []struct {
			URL   string  `json:"url"`
			Score float64 `json:"score"`
		} `json:"recommendations"`
	}
	if code := getJSON(t, client, base+"/recommend?user=alice&n=5", &rout); code != http.StatusOK {
		t.Fatalf("recommend status = %d", code)
	}

	// Parameter validation and pass-through of origin 404s.
	if code := getJSON(t, client, base+"/fetch", nil); code != http.StatusBadRequest {
		t.Fatalf("missing url status = %d, want 400", code)
	}
	if code := getJSON(t, client, base+"/fetch?url=http://site00.example/no-such-page", nil); code != http.StatusNotFound {
		t.Fatalf("dead url status = %d, want 404", code)
	}

	// /stats reports request counts and latency quantiles.
	var stats StatsResponse
	if code := getJSON(t, client, base+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats status = %d", code)
	}
	f := stats.Endpoints["fetch"]
	if f.Requests < 6 {
		t.Fatalf("fetch endpoint requests = %d, want >= 6", f.Requests)
	}
	if f.Latency.Count == 0 || f.Latency.P50Ms > f.Latency.P99Ms {
		t.Fatalf("fetch latency snapshot implausible: %+v", f.Latency)
	}
	if stats.Warehouse.Requests < 6 || stats.Warehouse.OriginFetches < 5 {
		t.Fatalf("warehouse stats implausible: %+v", stats.Warehouse)
	}
	if stats.Gateway.FetchWorkers <= 0 {
		t.Fatalf("gateway stats missing worker count: %+v", stats.Gateway)
	}
}

// TestMissStormCoalesces is the acceptance scenario: 50 concurrent
// requests for one cold URL must produce exactly one origin fetch.
func TestMissStormCoalesces(t *testing.T) {
	s, origin, g := newGatedGateway(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	const storm = 50
	cold := g.PageURLs[0]

	var wg sync.WaitGroup
	var hits, coalesced atomic.Int32
	for i := 0; i < storm; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var fr FetchResponse
			if code := getJSON(t, client, ts.URL+"/fetch?url="+cold, &fr); code != http.StatusOK {
				t.Errorf("storm fetch status = %d", code)
				return
			}
			hits.Add(1)
			if fr.Coalesced {
				coalesced.Add(1)
			}
		}()
	}

	// Wait until the whole storm is parked on one in-flight fetch: one
	// leader plus storm-1 joiners, exactly one origin fetch started.
	deadline := time.Now().Add(10 * time.Second)
	for s.flights.joiners(cold) < storm-1 {
		if time.Now().After(deadline) {
			t.Fatalf("storm never converged: joiners=%d fetches=%d",
				s.flights.joiners(cold), origin.fetches.Load())
		}
		time.Sleep(time.Millisecond)
	}
	close(origin.gate)
	wg.Wait()

	if n := origin.fetches.Load(); n != 1 {
		t.Fatalf("origin fetches = %d, want exactly 1", n)
	}
	if n := s.wh.Stats().OriginFetches; n != 1 {
		t.Fatalf("warehouse OriginFetches = %d, want 1", n)
	}
	if n := hits.Load(); n != storm {
		t.Fatalf("successful responses = %d, want %d", n, storm)
	}
	if n := coalesced.Load(); n != storm-1 {
		t.Fatalf("coalesced responses = %d, want %d", n, storm-1)
	}
	if n := s.CoalescedFetches(); n != storm-1 {
		t.Fatalf("CoalescedFetches = %d, want %d", n, storm-1)
	}
}

// TestColdMissesFetchInParallel verifies the warehouse no longer holds its
// write lock across origin fetches: two different cold URLs must be in
// flight at the origin simultaneously.
func TestColdMissesFetchInParallel(t *testing.T) {
	s, origin, g := newGatedGateway(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	origin.started = make(chan struct{}, 4)
	var wg sync.WaitGroup
	for _, u := range g.PageURLs[:2] {
		wg.Add(1)
		go func(u string) {
			defer wg.Done()
			if code := getJSON(t, client, ts.URL+"/fetch?url="+u, nil); code != http.StatusOK {
				t.Errorf("fetch %s = %d", u, code)
			}
		}(u)
	}
	// Two start tokens while the gate is still closed = two fetches in
	// flight at the origin simultaneously. No polling, no sleeps.
	for i := 0; i < 2; i++ {
		select {
		case <-origin.started:
		case <-time.After(10 * time.Second):
			t.Fatalf("only %d origin fetches in flight; cold misses serialized", origin.fetches.Load())
		}
	}
	close(origin.gate)
	wg.Wait()
}

// TestFetchDeadline verifies the per-request origin budget: a hung origin
// turns into 504 Gateway Timeout, not a hung client.
func TestFetchDeadline(t *testing.T) {
	s, origin, g := newGatedGateway(t, Config{FetchTimeout: 50 * time.Millisecond})
	defer close(origin.gate) // release the hung fetch at teardown
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var out map[string]string
	resp, err := ts.Client().Get(ts.URL + "/fetch?url=" + g.PageURLs[0])
	if err != nil {
		t.Fatalf("fetch: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d (%s), want 504", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &out); err != nil || out["error"] == "" {
		t.Fatalf("error payload missing: %q", body)
	}
}

// TestShutdownDrains verifies graceful shutdown returns only after
// in-flight requests complete — and that the drained request still gets a
// full response.
func TestShutdownDrains(t *testing.T) {
	s, origin, g := newGatedGateway(t, Config{Addr: "127.0.0.1:0"})
	if err := s.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	base := "http://" + s.Addr()
	client := &http.Client{Timeout: 30 * time.Second}
	origin.started = make(chan struct{}, 2)

	// Put one request in flight, blocked at the origin.
	type result struct {
		code int
		fr   FetchResponse
		err  error
	}
	resCh := make(chan result, 1)
	go func() {
		var r result
		resp, err := client.Get(base + "/fetch?url=" + g.PageURLs[0])
		if err != nil {
			r.err = err
		} else {
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			r.code = resp.StatusCode
			r.err = json.Unmarshal(body, &r.fr)
		}
		resCh <- r
	}()
	select {
	case <-origin.started:
	case <-time.After(10 * time.Second):
		t.Fatal("request never reached the origin")
	}

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()

	// While the request is blocked, shutdown must not complete.
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned (%v) while a request was in flight", err)
	case <-time.After(150 * time.Millisecond):
	}

	close(origin.gate)
	r := <-resCh
	if r.err != nil || r.code != http.StatusOK {
		t.Fatalf("drained request: code=%d err=%v", r.code, r.err)
	}
	if r.fr.Source != "origin" {
		t.Fatalf("drained request source = %q, want origin", r.fr.Source)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	// The daemon is actually down.
	quick := &http.Client{Timeout: 2 * time.Second}
	if _, err := quick.Get(base + "/healthz"); err == nil {
		t.Fatal("daemon still serving after Shutdown")
	}
}

// TestFetchWorkerPoolBounds verifies the pool caps concurrent origin
// fetches: with 2 workers and 6 distinct cold URLs in flight, the origin
// never sees more than 2 concurrent fetches.
func TestFetchWorkerPoolBounds(t *testing.T) {
	s, origin, g := newGatedGateway(t, Config{FetchWorkers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	origin.started = make(chan struct{}, 8)
	var wg sync.WaitGroup
	for _, u := range g.PageURLs[:6] {
		wg.Add(1)
		go func(u string) {
			defer wg.Done()
			if code := getJSON(t, client, ts.URL+"/fetch?url="+u, nil); code != http.StatusOK {
				t.Errorf("fetch %s = %d", u, code)
			}
		}(u)
	}

	// Wait for both workers to be parked on the gate, release the storm,
	// then judge the pool by its concurrency high-water mark: it must have
	// reached the bound (both tokens arrived while the gate was closed)
	// and never exceeded it — no saturation sleep needed.
	for i := 0; i < 2; i++ {
		select {
		case <-origin.started:
		case <-time.After(10 * time.Second):
			t.Fatal("pool never reached its 2 concurrent fetches")
		}
	}
	close(origin.gate)
	wg.Wait()
	if n := origin.fetches.Load(); n != 6 {
		t.Fatalf("total origin fetches = %d, want 6", n)
	}
	if n := origin.maxActive.Load(); n != 2 {
		t.Fatalf("origin concurrency high-water mark = %d, want pool bound 2", n)
	}
}

// TestConcurrentMixedTraffic hammers every endpoint at once — primarily a
// race-detector workout for the RWMutex split.
func TestConcurrentMixedTraffic(t *testing.T) {
	g := testWeb(t)
	origin := &gateOrigin{web: g.Web} // open gate
	wh, err := warehouse.New(warehouse.DefaultConfig(), core.NewSimClock(0), origin)
	if err != nil {
		t.Fatalf("warehouse.New: %v", err)
	}
	s, err := New(Config{}, wh)
	if err != nil {
		t.Fatalf("gateway.New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 15; j++ {
				u := g.PageURLs[(i*15+j)%len(g.PageURLs)]
				switch j % 4 {
				case 0, 1:
					getJSON(t, client, ts.URL+fmt.Sprintf("/fetch?url=%s&user=u%d", u, i), nil)
				case 2:
					getJSON(t, client, ts.URL+"/stats", nil)
				case 3:
					resp, err := client.Post(ts.URL+"/query", "text/plain",
						strings.NewReader(`SELECT MFU 3 p.url FROM Physical_Page p`))
					if err == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
				}
			}
		}(i)
	}
	wg.Wait()

	var stats StatsResponse
	if code := getJSON(t, client, ts.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats status = %d", code)
	}
	if stats.Warehouse.Requests == 0 {
		t.Fatal("no warehouse requests recorded under mixed traffic")
	}
}

// TestPprofEndpoints: /debug/pprof is mounted only when EnablePprof is set.
func TestPprofEndpoints(t *testing.T) {
	g := testWeb(t)
	wh, err := warehouse.New(warehouse.DefaultConfig(), core.NewSimClock(0), g.Web)
	if err != nil {
		t.Fatal(err)
	}
	for name, cfg := range map[string]Config{
		"enabled":  {EnablePprof: true},
		"disabled": {},
	} {
		s, err := New(cfg, wh)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		resp, err := ts.Client().Get(ts.URL + "/debug/pprof/")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		want := http.StatusNotFound
		if cfg.EnablePprof {
			want = http.StatusOK
		}
		if resp.StatusCode != want {
			t.Errorf("%s: GET /debug/pprof/ = %d, want %d", name, resp.StatusCode, want)
		}
		if cfg.EnablePprof {
			resp, err = ts.Client().Get(ts.URL + "/debug/pprof/goroutine?debug=1")
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine") {
				t.Errorf("goroutine profile: status %d", resp.StatusCode)
			}
		}
		ts.Close()
	}
}
