package gateway

import (
	"context"
	"sync"

	"cbfww/internal/warehouse"
)

// Stdlib-only request coalescing (a singleflight specialized to the fetch
// path). A miss storm — N concurrent requests for the same cold URL, the
// paper's hot-spot arrival pattern (§3(3)) — must cost one origin fetch,
// not N: the first caller becomes the leader and runs the fetch; everyone
// else parks on the call's done channel and shares the leader's result.

// flightCall is one in-flight fetch being shared.
type flightCall struct {
	done chan struct{}
	res  warehouse.GetResult
	err  error
	// dups counts callers that joined this call after the leader.
	dups int
}

// flightGroup coalesces concurrent work by key.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// Do runs fn once per key among concurrent callers. The leader executes fn
// in its own goroutine so that a caller abandoning the wait (ctx done)
// never cancels the shared work; each caller — leader included — waits for
// the result under its own ctx. joined reports whether this caller shared
// another caller's fetch instead of running its own.
func (g *flightGroup) Do(ctx context.Context, key string, fn func() (warehouse.GetResult, error)) (res warehouse.GetResult, joined bool, err error) {
	g.mu.Lock()
	if c, ok := g.calls[key]; ok {
		c.dups++
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.res, true, c.err
		case <-ctx.Done():
			return warehouse.GetResult{}, true, ctx.Err()
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	go func() {
		c.res, c.err = fn()
		g.mu.Lock()
		delete(g.calls, key)
		g.mu.Unlock()
		close(c.done)
	}()

	select {
	case <-c.done:
		return c.res, false, c.err
	case <-ctx.Done():
		// The shared fetch keeps running for any later joiners; this
		// caller alone gives up.
		return warehouse.GetResult{}, false, ctx.Err()
	}
}

// joiners reports how many callers are currently sharing the in-flight
// call for key (0 when no call is in flight). Tests use it to detect that
// a miss storm has fully converged on one fetch.
func (g *flightGroup) joiners(key string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.calls[key]; ok {
		return c.dups
	}
	return 0
}
