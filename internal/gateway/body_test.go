package gateway

// Serve-path tests for /body: large bodies must round-trip byte-exact
// from every storage tier over real file backends, HEAD must answer the
// stored size without a body, and the warm heap-tier serve must stay
// allocation-flat (the zero-copy contract the streaming read path exists
// for).

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"cbfww/internal/core"
	"cbfww/internal/simweb"
	"cbfww/internal/warehouse"
)

// fixedOrigin is a one-page origin: deterministic body, stable version,
// so every serve can be compared against the exact origin bytes.
type fixedOrigin struct{ page simweb.Page }

func (o *fixedOrigin) FetchCtx(ctx context.Context, url string) (simweb.FetchResult, error) {
	if url != o.page.URL {
		return simweb.FetchResult{}, core.ErrNotFound
	}
	return simweb.FetchResult{Page: o.page, Latency: 5}, nil
}

func (o *fixedOrigin) Fetch(url string) (simweb.FetchResult, error) {
	return o.FetchCtx(context.Background(), url)
}

func (o *fixedOrigin) HeadCtx(ctx context.Context, url string) (int, core.Time, error) {
	if url != o.page.URL {
		return 0, 0, core.ErrNotFound
	}
	return o.page.Version, o.page.LastMod, nil
}

func (o *fixedOrigin) Head(url string) (int, core.Time, error) {
	return o.HeadCtx(context.Background(), url)
}

// largeBody builds a deterministic n-byte body that is not one repeated
// character, so offset bugs (a shifted window, a truncated tail) change
// the bytes rather than hiding.
func largeBody(n int) string {
	var sb strings.Builder
	sb.Grow(n)
	for i := 0; sb.Len() < n; i++ {
		fmt.Fprintf(&sb, "line %d of the large body payload\n", i)
	}
	return sb.String()[:n]
}

// newBodyGateway assembles a gateway over a fixed one-page origin with
// real file-backed disk and tertiary tiers, sized so the page gets a full
// memory copy (below the large-document summary threshold).
func newBodyGateway(t *testing.T, page simweb.Page) (*Server, *warehouse.Warehouse) {
	t.Helper()
	cfg := warehouse.DefaultConfig()
	cfg.Storage.MemCapacity = 64 * core.MB
	cfg.Storage.DiskCapacity = 128 * core.MB
	cfg.DataDir = t.TempDir()
	wh, err := warehouse.New(cfg, core.NewSimClock(0), &fixedOrigin{page: page})
	if err != nil {
		t.Fatalf("warehouse.New: %v", err)
	}
	t.Cleanup(func() { wh.Close() })
	s, err := New(Config{}, wh)
	if err != nil {
		t.Fatalf("gateway.New: %v", err)
	}
	return s, wh
}

// discardWriter is a ResponseWriter that keeps headers and drops body
// bytes — it measures the handler's own cost without buffering the body
// the way httptest.ResponseRecorder would.
type discardWriter struct{ h http.Header }

func (w *discardWriter) Header() http.Header         { return w.h }
func (w *discardWriter) Write(p []byte) (int, error) { return len(p), nil }
func (w *discardWriter) WriteHeader(int)             {}

// TestBodyLargeRoundTrip walks one large page through every serving tier
// — origin (cold miss), memory, file-backed disk, segment-log tertiary —
// and asserts each GET /body answers the exact origin bytes with a
// correct Content-Length.
func TestBodyLargeRoundTrip(t *testing.T) {
	sizes := []struct {
		label string
		n     int
	}{
		{"64KB", 64 << 10},
		{"1MB", 1 << 20},
		{"4MB", 4 << 20},
	}
	for _, size := range sizes {
		t.Run(size.label, func(t *testing.T) {
			u := "http://big.example/payload.html"
			body := largeBody(size.n)
			page := simweb.Page{
				URL: u, Title: "big", Body: body,
				Size: core.Bytes(size.n), Version: 1,
			}
			s, wh := newBodyGateway(t, page)
			ts := httptest.NewServer(s.Handler())
			defer ts.Close()

			get := func(wantSource string) {
				t.Helper()
				resp, err := ts.Client().Get(ts.URL + "/body?url=" + u)
				if err != nil {
					t.Fatalf("GET /body: %v", err)
				}
				defer resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("GET /body = %d, want 200", resp.StatusCode)
				}
				if src := resp.Header.Get("X-CBFWW-Source"); src != wantSource {
					t.Errorf("served from %q, want %q", src, wantSource)
				}
				if cl := resp.ContentLength; cl != int64(size.n) {
					t.Errorf("Content-Length = %d, want %d", cl, size.n)
				}
				got, err := io.ReadAll(resp.Body)
				if err != nil {
					t.Fatalf("read body: %v", err)
				}
				if string(got) != body {
					t.Fatalf("served bytes differ from origin (%d vs %d bytes)", len(got), len(body))
				}
			}

			get("origin") // cold miss: fetch-through, admitted
			get("memory") // warm heap serve

			sm := wh.StorageManager()
			// Shrink memory to nothing: the full copy survives on disk only.
			if err := sm.Resize(1, 128*core.MB); err != nil {
				t.Fatalf("Resize to disk-only: %v", err)
			}
			get("disk")

			// Back up to the segment log, then shrink both fast tiers away.
			sm.Backup()
			if err := sm.Resize(1, 1); err != nil {
				t.Fatalf("Resize to tertiary-only: %v", err)
			}
			get("tertiary")

			// HEAD answers the stored size without a body transfer.
			resp, err := ts.Client().Head(ts.URL + "/body?url=" + u)
			if err != nil {
				t.Fatalf("HEAD /body: %v", err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("HEAD /body = %d, want 200", resp.StatusCode)
			}
			if resp.ContentLength != int64(size.n) {
				t.Errorf("HEAD Content-Length = %d, want %d", resp.ContentLength, size.n)
			}
			if n, _ := io.Copy(io.Discard, resp.Body); n != 0 {
				t.Errorf("HEAD carried %d body bytes, want 0", n)
			}
		})
	}
}

// newHeapBodyHandler builds an all-heap gateway with one warm large page
// and returns the mux plus a ready-to-replay request for GET /body.
func newHeapBodyHandler(t testing.TB, n int) (http.Handler, *http.Request, string) {
	t.Helper()
	u := "http://big.example/payload.html"
	body := largeBody(n)
	page := simweb.Page{URL: u, Title: "big", Body: body, Size: core.Bytes(n), Version: 1}
	cfg := warehouse.DefaultConfig()
	cfg.Storage.MemCapacity = 64 * core.MB
	cfg.Storage.DiskCapacity = 128 * core.MB
	wh, err := warehouse.New(cfg, core.NewSimClock(0), &fixedOrigin{page: page})
	if err != nil {
		t.Fatalf("warehouse.New: %v", err)
	}
	t.Cleanup(func() { wh.Close() })
	s, err := New(Config{}, wh)
	if err != nil {
		t.Fatalf("gateway.New: %v", err)
	}
	h := s.Handler()
	req := httptest.NewRequest(http.MethodGet, "/body?url="+u, nil)
	// One warming request admits the page into the memory tier.
	w := &discardWriter{h: make(http.Header)}
	h.ServeHTTP(w, req)
	if src := w.h.Get("X-CBFWW-Source"); src != "origin" {
		t.Fatalf("warming serve came from %q, want origin", src)
	}
	return h, req, body
}

// TestServeBodyHeapAllocCeiling is the bench-serve CI gate: a warm
// heap-tier GET /body must cost a fixed number of allocations — request
// plumbing only — regardless of body size. A body-sized buffer on the
// serve path (the pre-streaming behavior: decode payload, materialize
// Page.Body, write) blows the ceiling immediately.
func TestServeBodyHeapAllocCeiling(t *testing.T) {
	h, req, _ := newHeapBodyHandler(t, 1<<20)
	w := &discardWriter{}
	allocs := testing.AllocsPerRun(100, func() {
		w.h = make(http.Header)
		h.ServeHTTP(w, req)
	})
	if src := w.h.Get("X-CBFWW-Source"); src != "memory" {
		t.Fatalf("measured serve came from %q, want memory", src)
	}
	const ceiling = 64 // measured ~25 on the streaming path; a body-sized buffer costs thousands
	if allocs > ceiling {
		t.Errorf("warm heap GET /body allocs/op = %.0f, want <= %d", allocs, ceiling)
	}
}

// BenchmarkServeBody measures the warm heap-tier serve across body sizes
// (`make bench-serve`): with the streaming path, B/op and allocs/op stay
// flat as the body grows from 64KB to 4MB.
func BenchmarkServeBody(b *testing.B) {
	for _, size := range []struct {
		label string
		n     int
	}{
		{"64KB", 64 << 10},
		{"1MB", 1 << 20},
		{"4MB", 4 << 20},
	} {
		b.Run("size="+size.label, func(b *testing.B) {
			h, req, _ := newHeapBodyHandler(b, size.n)
			w := &discardWriter{}
			b.ReportAllocs()
			b.SetBytes(int64(size.n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.h = make(http.Header)
				h.ServeHTTP(w, req)
			}
		})
	}
}
