package gateway

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"cbfww/internal/core"
	"cbfww/internal/peers"
	"cbfww/internal/resilience"
	"cbfww/internal/warehouse"
	"cbfww/internal/workload"
)

// getPeerPage fetches and parses a framed /peer/fetch answer, returning
// the status code for non-200 responses.
func getPeerPage(t *testing.T, client *http.Client, u string) (peers.PeerPage, int) {
	t.Helper()
	resp, err := client.Get(u)
	if err != nil {
		t.Fatalf("GET %s: %v", u, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return peers.PeerPage{}, resp.StatusCode
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, peers.FrameContentType) {
		t.Fatalf("peer fetch content type = %q, want %q", ct, peers.FrameContentType)
	}
	m, page, err := peers.ReadFrame(resp.Body)
	if err != nil {
		t.Fatalf("read frame %s: %v", u, err)
	}
	return peers.PeerPage{Page: page, Source: m.Source, LatencyTicks: m.LatencyTicks, Stale: m.Stale}, resp.StatusCode
}

// newClusterGateway builds warehouse + server with a peer ring configured
// as self plus the given peers (addresses need not be live).
func newClusterGateway(t *testing.T, self string, peerAddrs []string, redirect bool) (*Server, *peers.Cluster, *workload.GeneratedWeb) {
	t.Helper()
	g := testWeb(t)
	wh, err := warehouse.New(warehouse.DefaultConfig(), core.NewSimClock(0), g.Web)
	if err != nil {
		t.Fatalf("warehouse.New: %v", err)
	}
	cl := peers.NewCluster(peers.Config{
		Timeout: 200 * time.Millisecond,
		Breaker: resilience.BreakerConfig{Threshold: 2, Cooldown: time.Minute},
	})
	cl.Configure(self, append(peerAddrs, self))
	wh.SetPeerSource(cl)
	s, err := New(Config{Cluster: cl, Redirect: redirect}, wh)
	if err != nil {
		t.Fatalf("gateway.New: %v", err)
	}
	return s, cl, g
}

// nonReplicaURL finds a page whose replica set excludes self — the only
// kind of URL the gateway routes away under replicated ownership.
func nonReplicaURL(t *testing.T, cl *peers.Cluster, urls []string) (pageURL string, owners []string) {
	t.Helper()
	for _, u := range urls {
		if o, selfIn := cl.Owners(u); !selfIn {
			return u, o
		}
	}
	t.Fatal("no URL with a self-free replica set in the generated web")
	return "", nil
}

// selfOwnedURL finds a page the ring assigns to this node.
func selfOwnedURL(t *testing.T, cl *peers.Cluster, urls []string) string {
	t.Helper()
	for _, u := range urls {
		if _, isSelf := cl.Owner(u); isSelf {
			return u
		}
	}
	t.Fatal("no self-owned URL in the generated web")
	return ""
}

// TestStatsClusterSectionStandalone: a daemon with no cluster still
// renders the section — disabled, empty peer list, never null.
func TestStatsClusterSectionStandalone(t *testing.T) {
	s, _, _ := newGatedGateway(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var stats StatsResponse
	if code := getJSON(t, ts.Client(), ts.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("/stats = %d", code)
	}
	if stats.Cluster.Enabled {
		t.Error("standalone daemon reports cluster enabled")
	}
	if stats.Cluster.Peers == nil {
		t.Error("cluster.peers is null, want []")
	}
	if len(stats.Cluster.Peers) != 0 {
		t.Errorf("standalone peers = %v, want empty", stats.Cluster.Peers)
	}
}

// TestStatsClusterSectionSingleNode: a configured single-node cluster is
// enabled with itself as the only member and no peers.
func TestStatsClusterSectionSingleNode(t *testing.T) {
	s, _, _ := newClusterGateway(t, "127.0.0.1:7001", nil, false)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var stats StatsResponse
	if code := getJSON(t, ts.Client(), ts.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("/stats = %d", code)
	}
	c := stats.Cluster
	if !c.Enabled || c.Self != "127.0.0.1:7001" || c.Members != 1 || c.VNodes != peers.DefaultVNodes {
		t.Errorf("cluster section = %+v, want enabled single node with %d vnodes", c, peers.DefaultVNodes)
	}
	if c.Peers == nil || len(c.Peers) != 0 {
		t.Errorf("single-node peers = %v, want empty non-nil", c.Peers)
	}
}

// TestStatsClusterSectionCounters: routing activity shows up per peer.
func TestStatsClusterSectionCounters(t *testing.T) {
	// Both peer addresses are dead on purpose: with replicas=2 on a
	// three-member ring, a URL whose replica set excludes self has both
	// its replicas dead, so proxies fail, breakers open, and the
	// routed-around fallback all become observable in /stats.
	deadA, deadB := "127.0.0.1:1", "127.0.0.1:2"
	s, cl, g := newClusterGateway(t, "127.0.0.1:7002", []string{deadA, deadB}, false)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	u, owners := nonReplicaURL(t, cl, g.PageURLs)
	if len(owners) != 2 {
		t.Fatalf("owners = %v, want 2 replicas", owners)
	}
	for i := 0; i < 4; i++ {
		if code := getJSON(t, ts.Client(), ts.URL+"/fetch?url="+url.QueryEscape(u), nil); code != http.StatusOK {
			t.Fatalf("fetch with dead replicas = %d, want 200 (local fallback)", code)
		}
	}

	var stats StatsResponse
	getJSON(t, ts.Client(), ts.URL+"/stats", &stats)
	if stats.Cluster.Replicas != 2 {
		t.Errorf("cluster.replicas = %d, want 2", stats.Cluster.Replicas)
	}
	if len(stats.Cluster.Peers) != 2 {
		t.Fatalf("peers = %+v, want the two dead peers", stats.Cluster.Peers)
	}
	var proxyFailures, routedAround uint64
	opened := 0
	for _, p := range stats.Cluster.Peers {
		proxyFailures += p.ProxyFailures
		routedAround += p.RoutedAround
		if p.Breaker == "open" {
			opened++
		}
	}
	if proxyFailures == 0 {
		t.Errorf("peer stats = %+v, want proxy failures against the dead replicas", stats.Cluster.Peers)
	}
	if opened == 0 {
		t.Errorf("no breaker open after repeated proxy failures (threshold 2): %+v", stats.Cluster.Peers)
	}
	if routedAround == 0 {
		t.Errorf("routed_around = 0, want > 0 once a breaker opened")
	}
}

// TestForwardedLoopGuard: the hop-list guard lets legitimate forwards
// land (credited to the sender) and breaks true cycles — a request whose
// hop list already names this node is served locally without another hop.
func TestForwardedLoopGuard(t *testing.T) {
	self := "127.0.0.1:7003"
	deadA, deadB := "127.0.0.1:1", "127.0.0.1:2"
	s, cl, g := newClusterGateway(t, self, []string{deadA, deadB}, false)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// A legitimate forward: a peer routed a self-replica URL here. Served
	// locally, credited to the immediate sender.
	u := selfOwnedURL(t, cl, g.PageURLs)
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/fetch?url="+url.QueryEscape(u), nil)
	req.Header.Set(peers.HeaderFrom, deadA)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatalf("forwarded fetch: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded fetch = %d, want 200 served locally", resp.StatusCode)
	}
	if got := resp.Header.Get(peers.HeaderNode); got != self {
		t.Errorf("X-CBFWW-Node = %q, want self", got)
	}
	var stats StatsResponse
	getJSON(t, ts.Client(), ts.URL+"/stats", &stats)
	var forwarded uint64
	for _, p := range stats.Cluster.Peers {
		forwarded += p.Forwarded
	}
	if forwarded != 1 {
		t.Errorf("forwarded counter = %d, want 1", forwarded)
	}

	// A true cycle: the hop list already names this node. Even though the
	// replica set excludes self, the request must not be forwarded again —
	// local serve, and no proxy attempts burned on it.
	cu, owners := nonReplicaURL(t, cl, g.PageURLs)
	before := proxyFailureTotal(t, ts)
	req, _ = http.NewRequest(http.MethodGet, ts.URL+"/fetch?url="+url.QueryEscape(cu), nil)
	req.Header.Set(peers.HeaderFrom, peers.AppendHop(owners[0], self))
	resp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatalf("cyclic fetch: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cyclic fetch = %d, want 200 served locally", resp.StatusCode)
	}
	if got := resp.Header.Get(peers.HeaderNode); got != self {
		t.Errorf("cyclic X-CBFWW-Node = %q, want self (never re-proxy a seen request)", got)
	}
	if after := proxyFailureTotal(t, ts); after != before {
		t.Errorf("cyclic request burned proxy attempts: failures %d -> %d", before, after)
	}
}

// proxyFailureTotal sums proxy_failures across all peers in /stats.
func proxyFailureTotal(t *testing.T, ts *httptest.Server) uint64 {
	t.Helper()
	var stats StatsResponse
	getJSON(t, ts.Client(), ts.URL+"/stats", &stats)
	var total uint64
	for _, p := range stats.Cluster.Peers {
		total += p.ProxyFailures
	}
	return total
}

// TestSelfOwnedServesLocally: self-owned URLs never touch the (dead)
// peer, and responses carry the identity headers.
func TestSelfOwnedServesLocally(t *testing.T) {
	self := "127.0.0.1:7004"
	s, cl, g := newClusterGateway(t, self, []string{"127.0.0.1:1"}, false)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	u := selfOwnedURL(t, cl, g.PageURLs)
	resp, err := ts.Client().Get(ts.URL + "/fetch?url=" + url.QueryEscape(u))
	if err != nil {
		t.Fatalf("fetch: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("self-owned fetch = %d", resp.StatusCode)
	}
	if got := resp.Header.Get(peers.HeaderNode); got != self {
		t.Errorf("X-CBFWW-Node = %q, want %q", got, self)
	}
	if got := resp.Header.Get(peers.HeaderOwner); got != self {
		t.Errorf("X-CBFWW-Owner = %q, want %q", got, self)
	}
}

// TestRedirectMode: -redirect turns ownership routing into 307s aimed at
// the first healthy replica, counted per peer — and a Down primary moves
// the 307 to the next replica instead of failing.
func TestRedirectMode(t *testing.T) {
	s, cl, g := newClusterGateway(t, "127.0.0.1:7005", []string{"127.0.0.1:1", "127.0.0.1:2"}, true)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	u, owners := nonReplicaURL(t, cl, g.PageURLs)
	client := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	resp, err := client.Get(ts.URL + "/fetch?url=" + url.QueryEscape(u))
	if err != nil {
		t.Fatalf("fetch: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("redirect-mode fetch = %d, want 307", resp.StatusCode)
	}
	loc := resp.Header.Get("Location")
	want := "http://" + owners[0] + "/fetch?url=" + url.QueryEscape(u)
	if loc != want {
		t.Errorf("Location = %q, want %q (primary replica)", loc, want)
	}

	// Primary goes Down: the 307 aims at the surviving replica.
	cl.SetPeerDown(owners[0], true)
	resp, err = client.Get(ts.URL + "/fetch?url=" + url.QueryEscape(u))
	if err != nil {
		t.Fatalf("fetch with primary down: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("redirect with primary down = %d, want 307 to the next replica", resp.StatusCode)
	}
	want = "http://" + owners[1] + "/fetch?url=" + url.QueryEscape(u)
	if loc := resp.Header.Get("Location"); loc != want {
		t.Errorf("failover Location = %q, want %q", loc, want)
	}

	var stats StatsResponse
	getJSON(t, ts.Client(), ts.URL+"/stats", &stats)
	var redirects, routedAround uint64
	for _, p := range stats.Cluster.Peers {
		redirects += p.Redirects
		if p.Addr == owners[0] {
			routedAround = p.RoutedAround
		}
	}
	if redirects != 2 {
		t.Errorf("redirects = %d, want 2", redirects)
	}
	if routedAround == 0 {
		t.Errorf("routed_around = 0 for the Down primary, want > 0")
	}
}

// TestPeerFetchEndpoint: /peer/fetch answers resident pages and 404s
// cold ones without ever fetching the origin.
func TestPeerFetchEndpoint(t *testing.T) {
	s, cl, g := newClusterGateway(t, "127.0.0.1:7006", nil, false)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	u := selfOwnedURL(t, cl, g.PageURLs)
	if code := getJSON(t, ts.Client(), ts.URL+"/fetch?url="+url.QueryEscape(u), nil); code != http.StatusOK {
		t.Fatalf("admitting fetch = %d", code)
	}
	fetchesAfterAdmit := g.Web.TotalFetches()

	pp, code := getPeerPage(t, ts.Client(), ts.URL+peers.PeerFetchPath+"?url="+url.QueryEscape(u))
	if code != http.StatusOK {
		t.Fatalf("peer fetch of resident page = %d, want 200", code)
	}
	if pp.Page.URL != u || pp.Page.Body == "" {
		t.Errorf("peer page = %+v, want the admitted copy of %s", pp.Page, u)
	}
	if pp.Source == "" || pp.Source == "origin" || pp.Source == "peer" {
		t.Errorf("peer-fetch source = %q, want a resident tier name", pp.Source)
	}

	cold := "http://never-admitted.example/missing.html"
	if code := getJSON(t, ts.Client(), ts.URL+peers.PeerFetchPath+"?url="+url.QueryEscape(cold), nil); code != http.StatusNotFound {
		t.Fatalf("peer fetch of cold page = %d, want 404", code)
	}
	if code := getJSON(t, ts.Client(), ts.URL+peers.PeerFetchPath, nil); code != http.StatusBadRequest {
		t.Fatalf("peer fetch without url = %d, want 400", code)
	}
	if got := g.Web.TotalFetches(); got != fetchesAfterAdmit {
		t.Errorf("peer fetches changed origin fetch count %d -> %d; must be resident-only", fetchesAfterAdmit, got)
	}
}

// TestPeerPutEndpoint: /peer/put admits a pushed payload without an
// origin fetch, refuses stale re-pushes, counts the sender, and rejects
// malformed bodies.
func TestPeerPutEndpoint(t *testing.T) {
	sender := "127.0.0.1:1"
	s, _, g := newClusterGateway(t, "127.0.0.1:7007", []string{sender}, false)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	u := g.PageURLs[0]
	fr, err := g.Web.Fetch(u)
	if err != nil {
		t.Fatalf("origin fetch for the push payload: %v", err)
	}
	fetchesBefore := g.Web.TotalFetches()

	push := func(pp peers.PeerPut) (int, map[string]bool) {
		t.Helper()
		body, err := json.Marshal(pp)
		if err != nil {
			t.Fatal(err)
		}
		req, _ := http.NewRequest(http.MethodPost, ts.URL+peers.PeerPutPath, bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(peers.HeaderFrom, sender)
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatalf("peer put: %v", err)
		}
		defer resp.Body.Close()
		var out map[string]bool
		json.NewDecoder(resp.Body).Decode(&out)
		return resp.StatusCode, out
	}

	if code, out := push(peers.PeerPut{URL: u, Page: fr.Page}); code != http.StatusOK || !out["admitted"] {
		t.Fatalf("cold push = %d %v, want 200 admitted", code, out)
	}
	// The pushed copy is resident: /peer/fetch serves it without any
	// origin traffic.
	if _, code := getPeerPage(t, ts.Client(), ts.URL+peers.PeerFetchPath+"?url="+url.QueryEscape(u)); code != http.StatusOK {
		t.Fatalf("peer fetch after push = %d, want 200 resident", code)
	}
	if got := g.Web.TotalFetches(); got != fetchesBefore {
		t.Errorf("replica push touched the origin: fetches %d -> %d", fetchesBefore, got)
	}
	// Same version again is an honest no-op, not an error.
	if code, out := push(peers.PeerPut{URL: u, Page: fr.Page}); code != http.StatusOK || out["admitted"] {
		t.Errorf("same-version push = %d %v, want 200 not admitted", code, out)
	}

	var stats StatsResponse
	getJSON(t, ts.Client(), ts.URL+"/stats", &stats)
	if len(stats.Cluster.Peers) != 1 || stats.Cluster.Peers[0].ReplicaReceived != 2 {
		t.Errorf("peer stats = %+v, want replica_received = 2 for %s", stats.Cluster.Peers, sender)
	}
	if stats.Warehouse.ReplicaAdmits != 1 {
		t.Errorf("warehouse replica_admits = %d, want 1", stats.Warehouse.ReplicaAdmits)
	}

	// Malformed bodies are the client's problem.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+peers.PeerPutPath, strings.NewReader("{not json"))
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage push = %d, want 400", resp.StatusCode)
	}
	if code, _ := push(peers.PeerPut{}); code != http.StatusBadRequest {
		t.Errorf("empty push = %d, want 400", code)
	}
}

// TestHealthzDegraded: /healthz stays 200 but flips to "degraded" with a
// complaint while a peer is Down, and recovers to "ok".
func TestHealthzDegraded(t *testing.T) {
	peer := "127.0.0.1:1"
	s, cl, _ := newClusterGateway(t, "127.0.0.1:7008", []string{peer}, false)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var hz HealthzResponse
	if code := getJSON(t, ts.Client(), ts.URL+"/healthz", &hz); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
	if hz.Status != "ok" || len(hz.Detail) != 0 {
		t.Fatalf("healthy node reports %+v, want ok with no detail", hz)
	}

	cl.SetPeerDown(peer, true)
	if code := getJSON(t, ts.Client(), ts.URL+"/healthz", &hz); code != http.StatusOK {
		t.Fatalf("degraded healthz = %d, want 200 (degraded is alive)", code)
	}
	if hz.Status != "degraded" || len(hz.Detail) == 0 {
		t.Fatalf("with a Down peer healthz = %+v, want degraded with detail", hz)
	}
	if !strings.Contains(hz.Detail[0], peer) || !strings.Contains(hz.Detail[0], "down") {
		t.Errorf("detail = %q, want it to name the Down peer", hz.Detail)
	}

	cl.SetPeerDown(peer, false)
	getJSON(t, ts.Client(), ts.URL+"/healthz", &hz)
	if hz.Status != "ok" {
		t.Errorf("after recovery healthz = %+v, want ok", hz)
	}
}
