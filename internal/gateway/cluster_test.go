package gateway

import (
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"

	"cbfww/internal/core"
	"cbfww/internal/peers"
	"cbfww/internal/resilience"
	"cbfww/internal/warehouse"
	"cbfww/internal/workload"
)

// newClusterGateway builds warehouse + server with a peer ring configured
// as self plus the given peers (addresses need not be live).
func newClusterGateway(t *testing.T, self string, peerAddrs []string, redirect bool) (*Server, *peers.Cluster, *workload.GeneratedWeb) {
	t.Helper()
	g := testWeb(t)
	wh, err := warehouse.New(warehouse.DefaultConfig(), core.NewSimClock(0), g.Web)
	if err != nil {
		t.Fatalf("warehouse.New: %v", err)
	}
	cl := peers.NewCluster(peers.Config{
		Timeout: 200 * time.Millisecond,
		Breaker: resilience.BreakerConfig{Threshold: 2, Cooldown: time.Minute},
	})
	cl.Configure(self, append(peerAddrs, self))
	wh.SetPeerSource(cl)
	s, err := New(Config{Cluster: cl, Redirect: redirect}, wh)
	if err != nil {
		t.Fatalf("gateway.New: %v", err)
	}
	return s, cl, g
}

// peerOwnedURL finds a page the ring assigns to somebody other than self.
func peerOwnedURL(t *testing.T, cl *peers.Cluster, urls []string) (pageURL, owner string) {
	t.Helper()
	for _, u := range urls {
		if o, isSelf := cl.Owner(u); !isSelf {
			return u, o
		}
	}
	t.Fatal("no peer-owned URL in the generated web")
	return "", ""
}

// selfOwnedURL finds a page the ring assigns to this node.
func selfOwnedURL(t *testing.T, cl *peers.Cluster, urls []string) string {
	t.Helper()
	for _, u := range urls {
		if _, isSelf := cl.Owner(u); isSelf {
			return u
		}
	}
	t.Fatal("no self-owned URL in the generated web")
	return ""
}

// TestStatsClusterSectionStandalone: a daemon with no cluster still
// renders the section — disabled, empty peer list, never null.
func TestStatsClusterSectionStandalone(t *testing.T) {
	s, _, _ := newGatedGateway(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var stats StatsResponse
	if code := getJSON(t, ts.Client(), ts.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("/stats = %d", code)
	}
	if stats.Cluster.Enabled {
		t.Error("standalone daemon reports cluster enabled")
	}
	if stats.Cluster.Peers == nil {
		t.Error("cluster.peers is null, want []")
	}
	if len(stats.Cluster.Peers) != 0 {
		t.Errorf("standalone peers = %v, want empty", stats.Cluster.Peers)
	}
}

// TestStatsClusterSectionSingleNode: a configured single-node cluster is
// enabled with itself as the only member and no peers.
func TestStatsClusterSectionSingleNode(t *testing.T) {
	s, _, _ := newClusterGateway(t, "127.0.0.1:7001", nil, false)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var stats StatsResponse
	if code := getJSON(t, ts.Client(), ts.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("/stats = %d", code)
	}
	c := stats.Cluster
	if !c.Enabled || c.Self != "127.0.0.1:7001" || c.Members != 1 || c.VNodes != peers.DefaultVNodes {
		t.Errorf("cluster section = %+v, want enabled single node with %d vnodes", c, peers.DefaultVNodes)
	}
	if c.Peers == nil || len(c.Peers) != 0 {
		t.Errorf("single-node peers = %v, want empty non-nil", c.Peers)
	}
}

// TestStatsClusterSectionCounters: routing activity shows up per peer.
func TestStatsClusterSectionCounters(t *testing.T) {
	// The peer address is dead on purpose: proxies fail and fall back, so
	// proxy_failures and breaker state become observable in /stats.
	deadPeer := "127.0.0.1:1"
	s, cl, g := newClusterGateway(t, "127.0.0.1:7002", []string{deadPeer}, false)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	u, _ := peerOwnedURL(t, cl, g.PageURLs)
	for i := 0; i < 3; i++ {
		if code := getJSON(t, ts.Client(), ts.URL+"/fetch?url="+url.QueryEscape(u), nil); code != http.StatusOK {
			t.Fatalf("fetch with dead owner = %d, want 200 (local fallback)", code)
		}
	}

	var stats StatsResponse
	getJSON(t, ts.Client(), ts.URL+"/stats", &stats)
	if len(stats.Cluster.Peers) != 1 {
		t.Fatalf("peers = %+v, want the one dead peer", stats.Cluster.Peers)
	}
	p := stats.Cluster.Peers[0]
	if p.Addr != deadPeer || p.ProxyFailures == 0 {
		t.Errorf("peer stat = %+v, want proxy failures against %s", p, deadPeer)
	}
	if p.Breaker != "open" {
		t.Errorf("breaker = %q after repeated proxy failures (threshold 2), want open", p.Breaker)
	}
	if p.RoutedAround == 0 {
		t.Errorf("routed_around = 0, want > 0 once the breaker opened")
	}
}

// TestForwardedLoopGuard: a request carrying X-CBFWW-From is served
// locally even when the ring says another node owns the URL.
func TestForwardedLoopGuard(t *testing.T) {
	s, cl, g := newClusterGateway(t, "127.0.0.1:7003", []string{"127.0.0.1:1"}, false)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	u, owner := peerOwnedURL(t, cl, g.PageURLs)
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/fetch?url="+url.QueryEscape(u), nil)
	req.Header.Set(peers.HeaderFrom, owner)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatalf("forwarded fetch: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded fetch = %d, want 200 served locally", resp.StatusCode)
	}
	if got := resp.Header.Get(peers.HeaderNode); got != "127.0.0.1:7003" {
		t.Errorf("X-CBFWW-Node = %q, want self (forwarded requests never re-proxy)", got)
	}
	if got := resp.Header.Get(peers.HeaderOwner); got != owner {
		t.Errorf("X-CBFWW-Owner = %q, want %q", got, owner)
	}
	var stats StatsResponse
	getJSON(t, ts.Client(), ts.URL+"/stats", &stats)
	var forwarded uint64
	for _, p := range stats.Cluster.Peers {
		forwarded += p.Forwarded
	}
	if forwarded != 1 {
		t.Errorf("forwarded counter = %d, want 1", forwarded)
	}
}

// TestSelfOwnedServesLocally: self-owned URLs never touch the (dead)
// peer, and responses carry the identity headers.
func TestSelfOwnedServesLocally(t *testing.T) {
	self := "127.0.0.1:7004"
	s, cl, g := newClusterGateway(t, self, []string{"127.0.0.1:1"}, false)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	u := selfOwnedURL(t, cl, g.PageURLs)
	resp, err := ts.Client().Get(ts.URL + "/fetch?url=" + url.QueryEscape(u))
	if err != nil {
		t.Fatalf("fetch: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("self-owned fetch = %d", resp.StatusCode)
	}
	if got := resp.Header.Get(peers.HeaderNode); got != self {
		t.Errorf("X-CBFWW-Node = %q, want %q", got, self)
	}
	if got := resp.Header.Get(peers.HeaderOwner); got != self {
		t.Errorf("X-CBFWW-Owner = %q, want %q", got, self)
	}
}

// TestRedirectMode: -redirect turns ownership routing into 307s aimed at
// the owner, counted per peer.
func TestRedirectMode(t *testing.T) {
	s, cl, g := newClusterGateway(t, "127.0.0.1:7005", []string{"127.0.0.1:1"}, true)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	u, owner := peerOwnedURL(t, cl, g.PageURLs)
	client := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	resp, err := client.Get(ts.URL + "/fetch?url=" + url.QueryEscape(u))
	if err != nil {
		t.Fatalf("fetch: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("redirect-mode fetch = %d, want 307", resp.StatusCode)
	}
	loc := resp.Header.Get("Location")
	want := "http://" + owner + "/fetch?url=" + url.QueryEscape(u)
	if loc != want {
		t.Errorf("Location = %q, want %q", loc, want)
	}
	var stats StatsResponse
	getJSON(t, ts.Client(), ts.URL+"/stats", &stats)
	var redirects uint64
	for _, p := range stats.Cluster.Peers {
		redirects += p.Redirects
	}
	if redirects != 1 {
		t.Errorf("redirects = %d, want 1", redirects)
	}
}

// TestPeerFetchEndpoint: /peer/fetch answers resident pages and 404s
// cold ones without ever fetching the origin.
func TestPeerFetchEndpoint(t *testing.T) {
	s, cl, g := newClusterGateway(t, "127.0.0.1:7006", nil, false)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	u := selfOwnedURL(t, cl, g.PageURLs)
	if code := getJSON(t, ts.Client(), ts.URL+"/fetch?url="+url.QueryEscape(u), nil); code != http.StatusOK {
		t.Fatalf("admitting fetch = %d", code)
	}
	fetchesAfterAdmit := g.Web.TotalFetches()

	var pp peers.PeerPage
	if code := getJSON(t, ts.Client(), ts.URL+peers.PeerFetchPath+"?url="+url.QueryEscape(u), &pp); code != http.StatusOK {
		t.Fatalf("peer fetch of resident page = %d, want 200", code)
	}
	if pp.Page.URL != u || pp.Page.Body == "" {
		t.Errorf("peer page = %+v, want the admitted copy of %s", pp.Page, u)
	}
	if pp.Source == "" || pp.Source == "origin" || pp.Source == "peer" {
		t.Errorf("peer-fetch source = %q, want a resident tier name", pp.Source)
	}

	cold := "http://never-admitted.example/missing.html"
	if code := getJSON(t, ts.Client(), ts.URL+peers.PeerFetchPath+"?url="+url.QueryEscape(cold), nil); code != http.StatusNotFound {
		t.Fatalf("peer fetch of cold page = %d, want 404", code)
	}
	if code := getJSON(t, ts.Client(), ts.URL+peers.PeerFetchPath, nil); code != http.StatusBadRequest {
		t.Fatalf("peer fetch without url = %d, want 400", code)
	}
	if got := g.Web.TotalFetches(); got != fetchesAfterAdmit {
		t.Errorf("peer fetches changed origin fetch count %d -> %d; must be resident-only", fetchesAfterAdmit, got)
	}
}
