package gateway

import (
	"testing"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
	samples := []time.Duration{
		1 * time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond,
		5 * time.Millisecond, 100 * time.Millisecond,
	}
	for _, d := range samples {
		h.Observe(d)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if s.MinMs != 1 || s.MaxMs != 100 {
		t.Fatalf("min/max = %v/%v, want 1/100", s.MinMs, s.MaxMs)
	}
	if s.P50Ms > s.P90Ms || s.P90Ms > s.P99Ms {
		t.Fatalf("quantiles not monotone: p50=%v p90=%v p99=%v", s.P50Ms, s.P90Ms, s.P99Ms)
	}
	// p99 is clamped to the observed maximum.
	if s.P99Ms > 100 {
		t.Fatalf("p99 = %v exceeds observed max 100ms", s.P99Ms)
	}
	// The median sample is 3ms; its bucket's upper edge is at most 2x.
	if s.P50Ms < 3 || s.P50Ms > 8 {
		t.Fatalf("p50 = %vms implausible for median 3ms", s.P50Ms)
	}
}

func TestHistogramQuantileUpperBound(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(10 * time.Millisecond)
	}
	// Every sample identical: all quantiles must land on the sample's
	// bucket, clamped to the max.
	for _, p := range []float64{0.01, 0.5, 0.99, 1} {
		q := h.Quantile(p)
		if q != 10*time.Millisecond && q > 16*time.Millisecond {
			t.Fatalf("quantile(%v) = %v, want ~10ms", p, q)
		}
	}
}

func TestRegistryObserve(t *testing.T) {
	r := NewRegistry()
	r.Observe("fetch", 5*time.Millisecond, false)
	r.Observe("fetch", 7*time.Millisecond, true)
	r.Observe("stats", 1*time.Millisecond, false)

	snap := r.Snapshot()
	f, ok := snap["fetch"]
	if !ok {
		t.Fatal("fetch endpoint missing from snapshot")
	}
	if f.Requests != 2 || f.Errors != 1 {
		t.Fatalf("fetch requests/errors = %d/%d, want 2/1", f.Requests, f.Errors)
	}
	if f.Latency.Count != 2 {
		t.Fatalf("fetch latency count = %d, want 2", f.Latency.Count)
	}
	if s := snap["stats"]; s.Requests != 1 || s.Errors != 0 {
		t.Fatalf("stats requests/errors = %d/%d, want 1/0", s.Requests, s.Errors)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 500; i++ {
				r.Observe("fetch", time.Duration(i)*time.Microsecond, i%10 == 0)
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	snap := r.Snapshot()
	if got := snap["fetch"].Requests; got != 8*500 {
		t.Fatalf("requests = %d, want %d", got, 8*500)
	}
}
