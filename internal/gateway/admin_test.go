package gateway

// POST /admin/resize: the operator surface for live capacity retargets.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"cbfww/internal/core"
	"cbfww/internal/warehouse"
)

func newAdminGateway(t *testing.T, cfg Config) *Server {
	t.Helper()
	g := testWeb(t)
	wh, err := warehouse.New(warehouse.DefaultConfig(), core.NewSimClock(0), g.Web)
	if err != nil {
		t.Fatalf("warehouse.New: %v", err)
	}
	s, err := New(cfg, wh)
	if err != nil {
		t.Fatalf("gateway.New: %v", err)
	}
	return s
}

func postResize(t *testing.T, base, body string) (*http.Response, func()) {
	t.Helper()
	resp, err := http.Post(base+"/admin/resize", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /admin/resize: %v", err)
	}
	return resp, func() { resp.Body.Close() }
}

func TestAdminResize(t *testing.T) {
	s := newAdminGateway(t, Config{EnableAdmin: true})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, done := postResize(t, ts.URL, `{"targets": {"memory": 1048576}}`)
	defer done()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resize status = %d", resp.StatusCode)
	}
	var rr ResizeResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatalf("decode: %v", err)
	}
	var found bool
	for _, ti := range rr.Storage {
		if ti.Name == "memory" {
			found = true
			if ti.Capacity != 1048576 {
				t.Errorf("memory capacity = %v, want 1048576", ti.Capacity)
			}
		}
	}
	if !found {
		t.Fatal("no memory tier in resize response")
	}

	// The /stats storage section reflects the retarget.
	var st StatsResponse
	if code := getJSON(t, http.DefaultClient, ts.URL+"/stats", &st); code != http.StatusOK {
		t.Fatalf("/stats status = %d", code)
	}
	if len(st.Storage) == 0 {
		t.Fatal("/stats has no storage section")
	}
	if st.Storage[0].Name != "memory" || st.Storage[0].Capacity != 1048576 {
		t.Errorf("stats storage[0] = %+v", st.Storage[0])
	}
	if st.Storage[len(st.Storage)-1].Capacity != 0 {
		t.Errorf("anchor tier not unbounded in stats: %+v", st.Storage[len(st.Storage)-1])
	}
}

func TestAdminResizeRejectsBadTargets(t *testing.T) {
	s := newAdminGateway(t, Config{EnableAdmin: true})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, body := range []string{
		`{"targets": {"nvm": 10}}`,      // unknown tier
		`{"targets": {"tertiary": 10}}`, // anchor is unbounded
		`{"targets": {"memory": -1}}`,   // negative
		`{}`,                            // no targets
		`not json`,
	} {
		resp, done := postResize(t, ts.URL, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("resize %q status = %d, want 400", body, resp.StatusCode)
		}
		done()
	}
}

func TestAdminResizeGatedOff(t *testing.T) {
	s := newAdminGateway(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, done := postResize(t, ts.URL, `{"targets": {"memory": 10}}`)
	defer done()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("ungated /admin/resize status = %d, want 404", resp.StatusCode)
	}
}
