package gateway

// Origin-resilience acceptance tests: the daemon in front of a faulty
// origin must degrade, not die — stale serves for admitted content,
// fast-failing breakers for dead hosts, and retries that measurably lift
// the admission success rate against a flaky origin.

import (
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"cbfww/internal/constraint"
	"cbfww/internal/core"
	"cbfww/internal/resilience"
	"cbfww/internal/simweb"
	"cbfww/internal/warehouse"
	"cbfww/internal/workload"
)

// resilientGateway assembles web → fault origin → resilience wrapper →
// warehouse → gateway, with strong consistency so every hit revalidates
// against the origin.
func resilientGateway(t *testing.T, fcfg simweb.FaultConfig, rcfg resilience.Config) (*Server, *simweb.FaultyOrigin, *resilience.Origin, *workload.GeneratedWeb) {
	t.Helper()
	g := testWeb(t)
	faults := simweb.NewFaultyOrigin(g.Web, fcfg)
	resilient, err := resilience.Wrap(faults, rcfg)
	if err != nil {
		t.Fatalf("resilience.Wrap: %v", err)
	}
	wcfg := warehouse.DefaultConfig()
	wcfg.Consistency = constraint.Consistency{Mode: constraint.Strong}
	wh, err := warehouse.New(wcfg, core.NewSimClock(0), resilient)
	if err != nil {
		t.Fatalf("warehouse.New: %v", err)
	}
	s, err := New(Config{Resilient: resilient, Faults: faults}, wh)
	if err != nil {
		t.Fatalf("gateway.New: %v", err)
	}
	return s, faults, resilient, g
}

// hostOfURL extracts "siteNN.example" from a generated page URL.
func hostOfURL(t *testing.T, url string) string {
	t.Helper()
	rest := url[len("http://"):]
	for i := 0; i < len(rest); i++ {
		if rest[i] == '/' {
			return rest[:i]
		}
	}
	t.Fatalf("no host in %q", url)
	return ""
}

// TestBlackoutDegradesAndBreaks is the acceptance scenario: one simweb
// host goes dark. Resident pages on it keep serving (200 + stale marker),
// unadmitted pages fail fast with 503 + Retry-After once the breaker
// opens (no origin traffic while open), and /stats shows the degradation.
func TestBlackoutDegradesAndBreaks(t *testing.T) {
	s, faults, _, g := resilientGateway(t,
		simweb.FaultConfig{Seed: 3},
		resilience.Config{
			Retry:   resilience.RetryPolicy{MaxAttempts: 1, Seed: 3},
			Breaker: resilience.BreakerConfig{Threshold: 2, Cooldown: time.Hour},
		})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	// Generated URLs are grouped by site; find one host's pages plus a
	// page on a different host.
	resident := g.PageURLs[0]
	deadHost := hostOfURL(t, resident)
	var unadmitted, otherHost string
	for _, u := range g.PageURLs[1:] {
		if hostOfURL(t, u) == deadHost {
			if unadmitted == "" {
				unadmitted = u
			}
		} else if otherHost == "" {
			otherHost = u
		}
	}
	if unadmitted == "" || otherHost == "" {
		t.Fatalf("fixture lacks needed URLs: %v", g.PageURLs)
	}

	// Admit the resident page while the origin is healthy.
	if code := getJSON(t, client, ts.URL+"/fetch?url="+resident, nil); code != http.StatusOK {
		t.Fatalf("admit status = %d", code)
	}

	// Lights out for the whole host.
	faults.Blackout(deadHost, true)

	// Resident page: 200, marked stale, on every request.
	for i := 0; i < 3; i++ {
		resp, err := client.Get(ts.URL + "/fetch?url=" + resident)
		if err != nil {
			t.Fatalf("degraded fetch: %v", err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("degraded fetch status = %d, want 200", resp.StatusCode)
		}
		if resp.Header.Get("X-CBFWW-Stale") != "1" {
			t.Fatalf("degraded fetch missing X-CBFWW-Stale header (request %d)", i)
		}
	}

	// The three revalidation failures above already tripped the breaker
	// (threshold 2). An unadmitted page on the dead host now fails fast:
	// 503 + Retry-After, with zero traffic reaching the origin.
	before := faults.Stats()
	resp, err := client.Get(ts.URL + "/fetch?url=" + unadmitted)
	if err != nil {
		t.Fatalf("unadmitted fetch: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("unadmitted fetch status = %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("503 without a usable Retry-After (%q)", ra)
	}
	if after := faults.Stats(); after.BlackoutRefusals != before.BlackoutRefusals {
		t.Fatalf("open breaker let traffic through: %+v -> %+v", before, after)
	}

	// Other hosts are unaffected.
	if code := getJSON(t, client, ts.URL+"/fetch?url="+otherHost, nil); code != http.StatusOK {
		t.Fatalf("other-host fetch status = %d, want 200", code)
	}

	// /stats tells the story: stale serves and breaker opens both nonzero.
	var stats StatsResponse
	if code := getJSON(t, client, ts.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats status = %d", code)
	}
	if stats.Resilience.StaleServes == 0 {
		t.Errorf("stats stale_serves = 0, want nonzero")
	}
	if stats.Resilience.BreakerOpens == 0 {
		t.Errorf("stats breaker_opens = 0, want nonzero")
	}
	if stats.Resilience.BreakerFastFails == 0 {
		t.Errorf("stats breaker_fast_fails = 0, want nonzero")
	}
	if stats.Resilience.OpenHosts != 1 {
		t.Errorf("stats open_hosts = %d, want 1", stats.Resilience.OpenHosts)
	}
	if stats.Resilience.FaultInjections == 0 {
		t.Errorf("stats fault_injections = 0, want nonzero (blackout refusals)")
	}

	// Recovery is possible: lift the blackout. The breaker stays open
	// (cool-down is an hour), but the resident page still serves.
	faults.Blackout(deadHost, false)
	resp, err = client.Get(ts.URL + "/fetch?url=" + resident)
	if err != nil {
		t.Fatalf("post-blackout fetch: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-blackout fetch status = %d", resp.StatusCode)
	}
}

// admissionRate drives every generated URL through a fresh daemon whose
// origin errors at the given rate, and returns how many admissions
// succeeded.
func admissionRate(t *testing.T, attempts int) int {
	t.Helper()
	s, _, _, g := resilientGateway(t,
		simweb.FaultConfig{Seed: 99, ErrorRate: 0.3},
		resilience.Config{
			Retry: resilience.RetryPolicy{
				MaxAttempts: attempts,
				BaseBackoff: time.Millisecond,
				MaxBackoff:  4 * time.Millisecond,
				Seed:        99,
			},
			// Breaker off: this test isolates the retry effect.
		})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	ok := 0
	for _, u := range g.PageURLs {
		if code := getJSON(t, client, ts.URL+"/fetch?url="+u, nil); code == http.StatusOK {
			ok++
		}
	}
	return ok
}

// TestRetriesLiftAdmissionRate: against a 30%-error origin, enabling
// retries must admit strictly more pages than going without.
func TestRetriesLiftAdmissionRate(t *testing.T) {
	without := admissionRate(t, 1)
	with := admissionRate(t, 4)
	total := 4 * 12 // testWeb geometry
	t.Logf("admission success: %d/%d without retries, %d/%d with", without, total, with, total)
	if with <= without {
		t.Fatalf("retries did not lift admission rate: %d (with) <= %d (without)", with, without)
	}
	// Sanity: the flaky origin actually bit the no-retry run.
	if without == total {
		t.Fatal("no-retry run saw no faults; error injection broken")
	}
}
