package gateway

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cbfww/internal/warehouse"
)

func TestFlightGroupCoalesces(t *testing.T) {
	g := newFlightGroup()
	const callers = 32

	var executions atomic.Int32
	release := make(chan struct{})
	fn := func() (warehouse.GetResult, error) {
		executions.Add(1)
		<-release
		return warehouse.GetResult{Source: "origin"}, nil
	}

	var wg sync.WaitGroup
	var joins atomic.Int32
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, joined, err := g.Do(context.Background(), "k", fn)
			if err != nil {
				t.Errorf("Do: %v", err)
			}
			if res.Source != "origin" {
				t.Errorf("res.Source = %q", res.Source)
			}
			if joined {
				joins.Add(1)
			}
		}()
	}
	// Wait until every follower has parked on the leader's call, then
	// release the shared work.
	deadline := time.Now().Add(5 * time.Second)
	for g.joiners("k") < callers-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d joiners after 5s", g.joiners("k"))
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if n := executions.Load(); n != 1 {
		t.Fatalf("fn executed %d times, want 1", n)
	}
	if n := joins.Load(); n != callers-1 {
		t.Fatalf("joined = %d, want %d", n, callers-1)
	}
}

func TestFlightGroupSequentialCallsRunSeparately(t *testing.T) {
	g := newFlightGroup()
	var executions atomic.Int32
	fn := func() (warehouse.GetResult, error) {
		executions.Add(1)
		return warehouse.GetResult{}, nil
	}
	for i := 0; i < 3; i++ {
		if _, joined, err := g.Do(context.Background(), "k", fn); err != nil || joined {
			t.Fatalf("call %d: joined=%v err=%v", i, joined, err)
		}
	}
	if n := executions.Load(); n != 3 {
		t.Fatalf("fn executed %d times, want 3 (no stale coalescing)", n)
	}
}

func TestFlightGroupErrorShared(t *testing.T) {
	g := newFlightGroup()
	sentinel := errors.New("origin down")
	release := make(chan struct{})
	fn := func() (warehouse.GetResult, error) {
		<-release
		return warehouse.GetResult{}, sentinel
	}
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = g.Do(context.Background(), "k", fn)
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for g.joiners("k") < 3 {
		if time.Now().After(deadline) {
			t.Fatal("joiners never converged")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, sentinel) {
			t.Fatalf("caller %d: err = %v, want sentinel", i, err)
		}
	}
}

func TestFlightGroupWaiterHonorsContext(t *testing.T) {
	g := newFlightGroup()
	release := make(chan struct{})
	defer close(release)
	fn := func() (warehouse.GetResult, error) {
		<-release
		return warehouse.GetResult{}, nil
	}
	// Leader parks on the slow fn under a short deadline.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err := g.Do(ctx, "k", fn)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("caller waited %v for an abandoned fetch", elapsed)
	}
}
