package gateway

import (
	"context"
)

// workerPool bounds how many origin fetches run at once: a counting
// semaphore sized at construction. Acquisition is context-aware, so a
// request whose deadline expires while queued behind a saturated pool
// fails fast instead of fetching for a client that already hung up.
type workerPool struct {
	sem chan struct{}
}

func newWorkerPool(workers int) *workerPool {
	if workers < 1 {
		workers = 1
	}
	return &workerPool{sem: make(chan struct{}, workers)}
}

// do runs fn on an acquired slot, or returns ctx.Err() without running it
// when the context ends first.
func (p *workerPool) do(ctx context.Context, fn func()) error {
	select {
	case p.sem <- struct{}{}:
	case <-ctx.Done():
		return ctx.Err()
	}
	defer func() { <-p.sem }()
	fn()
	return nil
}

// inflight returns how many slots are currently held.
func (p *workerPool) inflight() int { return len(p.sem) }

// capacity returns the pool size.
func (p *workerPool) capacity() int { return cap(p.sem) }
