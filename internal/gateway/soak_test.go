package gateway

// Soak test: the daemon under sustained concurrent load from many clients
// while the origin injects faults and suffers a host blackout mid-run. The
// point is not any single response but that the whole stack — mux, worker
// pool, singleflight, lock-striped warehouse, resilience wrapper — stays
// consistent and race-clean under fire (run with -race). Synchronization
// is entirely WaitGroup/channel based: phases are separated by joining the
// workers, never by sleeping.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"cbfww/internal/core"
	"cbfww/internal/resilience"
	"cbfww/internal/simweb"
	"cbfww/internal/warehouse"
)

func TestSoakFaultyOriginUnderConcurrentLoad(t *testing.T) {
	const (
		workers   = 8
		reqsPhase = 40
		errorRate = 0.15
		whShards  = 8
	)
	g := testWeb(t)
	faults := simweb.NewFaultyOrigin(g.Web, simweb.FaultConfig{Seed: 11, ErrorRate: errorRate})
	resilient, err := resilience.Wrap(faults, resilience.Config{
		Retry:   resilience.RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond},
		Breaker: resilience.BreakerConfig{Threshold: 50, Cooldown: 10 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	whCfg := warehouse.DefaultConfig()
	whCfg.Shards = whShards
	wh, err := warehouse.New(whCfg, core.NewSimClock(0), resilient)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Addr: "127.0.0.1:0", Resilient: resilient, Faults: faults}, wh)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	}()
	base := "http://" + s.Addr()
	client := &http.Client{Timeout: 30 * time.Second}

	// phase joins `workers` goroutines each issuing reqsPhase seeded mixed
	// requests. Any HTTP status is legal under fault injection; what is not
	// legal is a transport failure, an unreadable body, or a 200 /fetch
	// whose payload names the wrong URL.
	phase := func(t *testing.T, phaseNo int) {
		t.Helper()
		errs := make(chan error, workers)
		var wg sync.WaitGroup
		for wk := 0; wk < workers; wk++ {
			wg.Add(1)
			go func(wk int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(phaseNo*1000 + wk)))
				for i := 0; i < reqsPhase; i++ {
					target := g.PageURLs[rng.Intn(len(g.PageURLs))]
					var (
						resp *http.Response
						err  error
						kind = rng.Intn(10)
					)
					switch {
					case kind < 7:
						resp, err = client.Get(base + "/fetch?url=" + url.QueryEscape(target) + fmt.Sprintf("&user=soak-%d", wk))
					case kind < 8:
						resp, err = client.Get(base + "/search?q=the+page&n=5")
					case kind < 9:
						resp, err = client.Get(base + fmt.Sprintf("/recommend?user=soak-%d&n=5", wk))
					default:
						resp, err = client.Get(base + "/stats")
					}
					if err != nil {
						errs <- fmt.Errorf("worker %d: %v", wk, err)
						return
					}
					body, rerr := io.ReadAll(resp.Body)
					resp.Body.Close()
					if rerr != nil {
						errs <- fmt.Errorf("worker %d: read body: %v", wk, rerr)
						return
					}
					if kind < 7 && resp.StatusCode == http.StatusOK {
						var fr FetchResponse
						if err := json.Unmarshal(body, &fr); err != nil {
							errs <- fmt.Errorf("worker %d: bad /fetch payload: %v", wk, err)
							return
						}
						if fr.URL != target {
							errs <- fmt.Errorf("worker %d: asked %s, got %s", wk, target, fr.URL)
							return
						}
					}
				}
			}(wk)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Error(err)
		}
	}

	phase(t, 1)
	// Black out one origin host: its pages now only serve from the
	// warehouse (stale) or fail; everything else must keep flowing.
	host := strings.TrimPrefix(g.PageURLs[0], "http://")
	host = host[:strings.Index(host, "/")]
	faults.Blackout(host, true)
	phase(t, 2)
	faults.Blackout(host, false)
	phase(t, 3)

	// The daemon must still report a coherent, fully-populated view.
	var st StatsResponse
	if code := getJSON(t, client, base+"/stats", &st); code != http.StatusOK {
		t.Fatalf("/stats returned %d after soak", code)
	}
	if st.Gateway.Shards != whShards {
		t.Errorf("stats shards = %d, want %d", st.Gateway.Shards, whShards)
	}
	if len(st.Shards) != whShards {
		t.Fatalf("stats has %d shard snapshots, want %d", len(st.Shards), whShards)
	}
	sum := 0
	for _, ss := range st.Shards {
		sum += ss.Requests
	}
	if sum != st.Warehouse.Requests {
		t.Errorf("per-shard requests sum %d != warehouse total %d", sum, st.Warehouse.Requests)
	}
	if st.Warehouse.Requests == 0 {
		t.Error("soak produced no warehouse requests")
	}
	if faults.Stats().Total() == 0 {
		t.Error("fault origin injected nothing — soak not exercising faults")
	}
}
