package gateway

import (
	"math"
	"sort"
	"sync"
	"time"
)

// The gateway's observability surface: per-endpoint request counters and
// latency histograms, cheap enough to sit on every request (one mutex
// acquisition and two array writes), rendered as JSON by /stats.

// histBuckets is the number of exponential latency buckets: bucket i holds
// observations in [2^i, 2^(i+1)) microseconds, so the range spans 1µs to
// ~70s — wider than any sane HTTP request.
const histBuckets = 27

// Histogram is a fixed-bucket exponential latency histogram. Safe for
// concurrent use.
type Histogram struct {
	mu     sync.Mutex
	counts [histBuckets]uint64
	total  uint64
	sum    time.Duration
	min    time.Duration
	max    time.Duration
}

// bucketOf maps a duration to its bucket index.
func bucketOf(d time.Duration) int {
	us := d.Microseconds()
	b := 0
	for us > 1 && b < histBuckets-1 {
		us >>= 1
		b++
	}
	return b
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.counts[bucketOf(d)]++
	h.total++
	h.sum += d
	if h.total == 1 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// Quantile returns an upper-bound estimate of the p-quantile (0 < p <= 1):
// the upper edge of the bucket containing the p-th sample, clamped to the
// observed maximum.
func (h *Histogram) Quantile(p float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(p)
}

func (h *Histogram) quantileLocked(p float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := uint64(math.Ceil(p * float64(h.total)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			upper := time.Duration(1<<(uint(i)+1)) * time.Microsecond
			if upper > h.max {
				return h.max
			}
			return upper
		}
	}
	return h.max
}

// HistogramSnapshot is a point-in-time summary of a Histogram.
type HistogramSnapshot struct {
	Count  uint64  `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	MinMs  float64 `json:"min_ms"`
	MaxMs  float64 `json:"max_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P99Ms  float64 `json:"p99_ms"`
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// Snapshot summarizes the histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{
		Count: h.total,
		MinMs: ms(h.min),
		MaxMs: ms(h.max),
		P50Ms: ms(h.quantileLocked(0.50)),
		P90Ms: ms(h.quantileLocked(0.90)),
		P99Ms: ms(h.quantileLocked(0.99)),
	}
	if h.total > 0 {
		s.MeanMs = ms(h.sum / time.Duration(h.total))
	}
	return s
}

// EndpointSnapshot summarizes one endpoint's activity.
type EndpointSnapshot struct {
	Requests uint64            `json:"requests"`
	Errors   uint64            `json:"errors"`
	Latency  HistogramSnapshot `json:"latency"`
}

// endpointStats is the live counterpart of EndpointSnapshot.
type endpointStats struct {
	requests uint64
	errors   uint64
	hist     Histogram
}

// Registry tracks per-endpoint activity. Safe for concurrent use.
type Registry struct {
	mu        sync.Mutex
	endpoints map[string]*endpointStats
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{endpoints: make(map[string]*endpointStats)}
}

// endpoint returns (creating if needed) the stats cell for name.
func (r *Registry) endpoint(name string) *endpointStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.endpoints[name]
	if e == nil {
		e = &endpointStats{}
		r.endpoints[name] = e
	}
	return e
}

// Observe records one request against the named endpoint. isErr marks
// responses with status >= 500 (client errors are the client's problem and
// would drown real failures).
func (r *Registry) Observe(name string, d time.Duration, isErr bool) {
	e := r.endpoint(name)
	r.mu.Lock()
	e.requests++
	if isErr {
		e.errors++
	}
	r.mu.Unlock()
	e.hist.Observe(d)
}

// Snapshot returns every endpoint's summary keyed by endpoint name.
func (r *Registry) Snapshot() map[string]EndpointSnapshot {
	r.mu.Lock()
	names := make([]string, 0, len(r.endpoints))
	for name := range r.endpoints {
		names = append(names, name)
	}
	r.mu.Unlock()
	sort.Strings(names)

	out := make(map[string]EndpointSnapshot, len(names))
	for _, name := range names {
		e := r.endpoint(name)
		r.mu.Lock()
		snap := EndpointSnapshot{Requests: e.requests, Errors: e.errors}
		r.mu.Unlock()
		snap.Latency = e.hist.Snapshot()
		out[name] = snap
	}
	return out
}
