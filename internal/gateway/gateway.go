// Package gateway is the warehouse's network front: an http.Server daemon
// exposing CBFWW's non-transparent surfaces — fetch-through, the §4.3
// popularity-aware query dialect, recommendation, ranked search — over
// real sockets. The paper positions CBFWW as a non-transparent proxy users
// query directly (§3, §4.3); this package is that daemon, engineered for
// concurrency:
//
//   - request coalescing: N concurrent requests for one cold URL trigger
//     exactly one origin fetch (singleflight.go) — the miss-storm shape of
//     the paper's hot spots (§3(3));
//   - a bounded worker pool for origin fetches with per-request context
//     deadlines (pool.go), so a flood of cold URLs cannot swamp origins or
//     pile up goroutines;
//   - hot hits bypass both: resident pages are served straight from the
//     warehouse under its read-write lock;
//   - graceful shutdown that drains in-flight requests;
//   - a counters/latency-histogram registry (metrics.go) surfaced at
//     /stats.
//
// Endpoints:
//
//	GET  /fetch?url=U[&user=X]   fetch-through with admission
//	GET  /body?url=U[&user=X]    fetch-through, raw body streamed (metadata in headers)
//	POST /query                  popularity-aware query (§4.3); body = query text or form q=
//	GET  /search?q=T[&n=K]       ranked retrieval through the index hierarchy
//	GET  /recommend?user=X[&n=K] content suggestions
//	GET  /peer/fetch?url=U       cluster-internal resident-only probe (never fetches origin)
//	POST /peer/put               cluster-internal replication push (admit without origin fetch)
//	GET  /stats                  gateway + warehouse counters, latency quantiles, cluster section
//	GET  /healthz                liveness + health view: {"status":"ok"} or "degraded" with detail
//
// With a peers.Cluster configured, /fetch and /body route by ownership:
// a URL whose replica set excludes this node is proxied to the first
// healthy replica in owner order (or 307-redirected under
// Config.Redirect), and responses carry X-CBFWW-Node (who served) and
// X-CBFWW-Owner (the primary owner). A replica that is Down or
// breaker-open is routed around — the next replica takes it, and with
// none left the gateway serves locally instead of failing. /healthz
// always answers 200 (a degraded node is still alive) but reports
// status "degraded" with a complaint list when any peer is Down or any
// breaker is open.
package gateway

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"cbfww/internal/core"
	"cbfww/internal/peers"
	"cbfww/internal/resilience"
	"cbfww/internal/simweb"
	"cbfww/internal/storage"
	"cbfww/internal/warehouse"
)

// Config tunes the daemon.
type Config struct {
	// Addr is the listen address ("127.0.0.1:0" for an ephemeral port).
	Addr string
	// FetchWorkers bounds concurrent origin fetches.
	FetchWorkers int
	// FetchTimeout is the origin-fetch budget per coalesced fetch.
	FetchTimeout time.Duration
	// MaxQueryBytes bounds a POST /query body.
	MaxQueryBytes int64
	// MaxResults caps n parameters on /search and /recommend.
	MaxResults int
	// Resilient, when the warehouse's origin is wrapped by a
	// resilience.Origin, surfaces its retry/breaker counters at /stats
	// (nil is fine: the counters read zero).
	Resilient *resilience.Origin
	// Faults, when the origin path includes a fault-injecting simweb
	// origin, surfaces its injection counters at /stats (nil is fine).
	Faults *simweb.FaultyOrigin
	// EnablePprof mounts net/http/pprof's profiling endpoints under
	// /debug/pprof/. Off by default: the profiles expose internals
	// (goroutine stacks, heap contents) no public daemon should serve.
	EnablePprof bool
	// EnableAdmin mounts POST /admin/resize, the live capacity-retarget
	// endpoint. Off by default for the same reason as pprof: resizing
	// tiers is an operator surface, not a public one.
	EnableAdmin bool
	// Cluster, when set, makes this gateway one node of a peer ring:
	// /fetch and /body route to the URL's owner, /peer/fetch answers
	// resident-only probes, and /stats grows a "cluster" section. Nil (or
	// unconfigured) means standalone — every URL is self-owned.
	Cluster *peers.Cluster
	// Redirect switches ownership routing from proxying to 307 redirects:
	// the client is told the owner's address instead of the gateway
	// fetching on its behalf. Only meaningful with a Cluster.
	Redirect bool
}

// DefaultConfig returns production-ish defaults.
func DefaultConfig() Config {
	return Config{
		Addr:          "127.0.0.1:8642",
		FetchWorkers:  32,
		FetchTimeout:  10 * time.Second,
		MaxQueryBytes: 64 << 10,
		MaxResults:    100,
	}
}

// Server is the warehouse daemon.
type Server struct {
	cfg     Config
	wh      *warehouse.Warehouse
	metrics *Registry
	flights *flightGroup
	pool    *workerPool

	// coalesced counts /fetch requests that shared another request's
	// origin fetch instead of issuing their own.
	coalesced atomic.Uint64

	srv      *http.Server
	ln       net.Listener
	serveErr chan error
}

// New assembles a daemon over the warehouse (which must be non-nil).
func New(cfg Config, wh *warehouse.Warehouse) (*Server, error) {
	if wh == nil {
		return nil, fmt.Errorf("gateway: %w: nil warehouse", core.ErrInvalid)
	}
	def := DefaultConfig()
	if cfg.Addr == "" {
		cfg.Addr = def.Addr
	}
	if cfg.FetchWorkers <= 0 {
		cfg.FetchWorkers = def.FetchWorkers
	}
	if cfg.FetchTimeout <= 0 {
		cfg.FetchTimeout = def.FetchTimeout
	}
	if cfg.MaxQueryBytes <= 0 {
		cfg.MaxQueryBytes = def.MaxQueryBytes
	}
	if cfg.MaxResults <= 0 {
		cfg.MaxResults = def.MaxResults
	}
	s := &Server{
		cfg:     cfg,
		wh:      wh,
		metrics: NewRegistry(),
		flights: newFlightGroup(),
		pool:    newWorkerPool(cfg.FetchWorkers),
	}
	s.srv = &http.Server{Handler: s.Handler()}
	return s, nil
}

// Handler returns the daemon's routing table — usable directly under
// httptest without opening a real socket.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /fetch", s.instrument("fetch", s.handleFetch))
	mux.HandleFunc("GET /body", s.instrument("body", s.handleBody))
	mux.HandleFunc("POST /query", s.instrument("query", s.handleQuery))
	mux.HandleFunc("GET /search", s.instrument("search", s.handleSearch))
	mux.HandleFunc("GET /recommend", s.instrument("recommend", s.handleRecommend))
	mux.HandleFunc("GET "+peers.PeerFetchPath, s.instrument("peer_fetch", s.handlePeerFetch))
	mux.HandleFunc("POST "+peers.PeerPutPath, s.instrument("peer_put", s.handlePeerPut))
	mux.HandleFunc("GET /stats", s.instrument("stats", s.handleStats))
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	if s.cfg.EnableAdmin {
		mux.HandleFunc("POST /admin/resize", s.instrument("admin_resize", s.handleAdminResize))
	}
	if s.cfg.EnablePprof {
		// net/http/pprof registers on DefaultServeMux as an import side
		// effect; route the same handlers here without touching the
		// default mux (Index dispatches /debug/pprof/{heap,goroutine,...}).
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// Metrics exposes the registry (tests and embedding binaries).
func (s *Server) Metrics() *Registry { return s.metrics }

// CoalescedFetches returns how many /fetch requests joined another
// request's origin fetch.
func (s *Server) CoalescedFetches() uint64 { return s.coalesced.Load() }

// Start listens on cfg.Addr and serves in the background. It returns once
// the listener is bound, so Addr() is immediately valid.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return fmt.Errorf("gateway: listen %s: %w", s.cfg.Addr, err)
	}
	s.ln = ln
	s.serveErr = make(chan error, 1)
	go func() { s.serveErr <- s.srv.Serve(ln) }()
	return nil
}

// Addr returns the bound listen address (host:port), valid after Start.
func (s *Server) Addr() string {
	if s.ln == nil {
		return s.cfg.Addr
	}
	return s.ln.Addr().String()
}

// Shutdown stops accepting connections and blocks until every in-flight
// request has completed (or ctx expires, whichever is first).
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.srv.Shutdown(ctx)
	if s.serveErr != nil {
		if serr := <-s.serveErr; serr != nil && !errors.Is(serr, http.ErrServerClosed) && err == nil {
			err = serr
		}
		s.serveErr = nil
	}
	return err
}

// statusRecorder captures the response status for the metrics middleware.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with the counters/latency registry.
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h(rec, r)
		s.metrics.Observe(name, time.Since(start), rec.status >= 500)
	}
}

// httpStatus maps warehouse/context errors onto HTTP statuses.
func httpStatus(err error) int {
	switch {
	case errors.Is(err, core.ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, core.ErrInvalid):
		return http.StatusBadRequest
	case errors.Is(err, resilience.ErrOpen):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	writeJSON(w, httpStatus(err), map[string]string{"error": err.Error()})
}

// nParam parses an optional positive integer query parameter, clamped to
// the configured maximum.
func (s *Server) nParam(r *http.Request, name string, def int) int {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 1 {
		return def
	}
	if n > s.cfg.MaxResults {
		n = s.cfg.MaxResults
	}
	return n
}

// FetchResponse is the /fetch payload.
type FetchResponse struct {
	URL          string  `json:"url"`
	Title        string  `json:"title"`
	Body         string  `json:"body"`
	Size         int64   `json:"size"`
	Version      int     `json:"version"`
	Hit          bool    `json:"hit"`
	Coalesced    bool    `json:"coalesced"`
	Source       string  `json:"source"`
	LatencyTicks int64   `json:"latency_ticks"`
	Priority     float64 `json:"priority"`
	Stale        bool    `json:"stale"`
}

// routeToOwner applies cluster ownership routing for url. It returns true
// when the response has been fully written (proxied to a replica, or a
// 307 issued); false means the caller must serve locally — because this
// node is in the URL's replica set, the request's hop list already names
// this node (a true cycle), the cluster is off, or every replica is
// unreachable and local degradation is the right answer. Routing walks
// the replica set in owner order and picks the first *healthy* member:
// one the prober calls Up and whose breaker is not open. On local serves
// the X-CBFWW-Node and X-CBFWW-Owner headers are already set when routing
// is on.
func (s *Server) routeToOwner(w http.ResponseWriter, r *http.Request, url string) bool {
	cl := s.cfg.Cluster
	if cl == nil || !cl.Enabled() {
		return false
	}
	owners, selfIn := cl.Owners(url)
	h := w.Header()
	if len(owners) > 0 {
		h.Set(peers.HeaderOwner, owners[0])
	}
	hops := r.Header.Get(peers.HeaderFrom)
	if hops != "" {
		// A peer routed this request here; credit the immediate sender.
		cl.CountForwarded(peers.LastHop(hops))
	}
	if peers.HopsContain(hops, cl.Self()) {
		// This request has been through us before — a genuine routing
		// cycle (membership views can disagree mid-reconfigure). Serve
		// locally; never forward a request a second time.
		h.Set(peers.HeaderNode, cl.Self())
		return false
	}
	if selfIn {
		// We are one of the URL's replicas: serve locally. A cold miss
		// still probes the other replicas before the origin (the
		// warehouse's peer source), preserving one-origin-fetch.
		h.Set(peers.HeaderNode, cl.Self())
		return false
	}
	// Not a replica: hand the request to the first healthy replica that
	// has not already seen it.
	for _, owner := range owners {
		if peers.HopsContain(hops, owner) {
			continue
		}
		if !cl.Healthy(owner) {
			cl.CountRoutedAround(owner)
			continue
		}
		if s.cfg.Redirect {
			cl.CountRedirect(owner)
			h.Set("Location", "http://"+owner+r.URL.RequestURI())
			w.WriteHeader(http.StatusTemporaryRedirect)
			return true
		}
		if cl.Proxy(w, r, owner) {
			return true
		}
		// Proxy failed in transit or 5xx'd: the next replica is as good.
	}
	// Every replica unreachable or already visited: degrade to the local
	// serve path (which still has peer probes and stale-serve behind it).
	// Never fail the request on a peer's account.
	h.Set(peers.HeaderNode, cl.Self())
	return false
}

func (s *Server) handleFetch(w http.ResponseWriter, r *http.Request) {
	url := r.URL.Query().Get("url")
	if url == "" {
		writeError(w, fmt.Errorf("gateway: %w: missing url parameter", core.ErrInvalid))
		return
	}
	if s.routeToOwner(w, r, url) {
		return
	}
	user := r.URL.Query().Get("user")

	var (
		res    warehouse.GetResult
		err    error
		joined bool
	)
	if s.wh.Resident(url) {
		// Hot path: the page is already warehoused, so serving it is pure
		// in-memory work — no coalescing or pooling needed.
		res, err = s.wh.GetCtx(r.Context(), user, url)
	} else {
		res, joined, err = s.flights.Do(r.Context(), url, func() (warehouse.GetResult, error) {
			// The shared fetch is detached from any single client so an
			// impatient leader cannot poison the result for its joiners;
			// the configured fetch budget bounds it instead.
			ctx, cancel := context.WithTimeout(context.Background(), s.cfg.FetchTimeout)
			defer cancel()
			var (
				out  warehouse.GetResult
				ferr error
			)
			if perr := s.pool.do(ctx, func() { out, ferr = s.wh.GetCtx(ctx, user, url) }); perr != nil {
				return warehouse.GetResult{}, perr
			}
			return out, ferr
		})
		if joined {
			s.coalesced.Add(1)
		}
	}
	if err != nil {
		// An open breaker with no resident copy is the one honest answer a
		// bound-free warehouse cannot dodge: 503 plus when to come back.
		var open *resilience.BreakerOpenError
		if errors.As(err, &open) {
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(open.RetryAfter)))
		}
		writeError(w, err)
		return
	}
	if res.Stale {
		// Degraded serve: the origin failed (or lagged) and the warehouse
		// answered from its admitted copy.
		w.Header().Set("X-CBFWW-Stale", "1")
	}
	writeJSON(w, http.StatusOK, FetchResponse{
		URL:          res.Page.URL,
		Title:        res.Page.Title,
		Body:         res.Page.Body,
		Size:         int64(res.Page.Size),
		Version:      res.Page.Version,
		Hit:          res.Hit,
		Coalesced:    joined,
		Source:       res.Source,
		LatencyTicks: int64(res.Latency),
		Priority:     float64(res.Priority),
		Stale:        res.Stale,
	})
}

// handleBody streams the page body itself — the bytes the storage tiers
// hold — instead of a JSON envelope. Serving metadata rides in headers:
// X-CBFWW-Source (tier name or "origin"), X-CBFWW-Version, and
// X-CBFWW-Stale on degraded serves. It shares /fetch's full fetch-through
// path, so a cold URL is admitted exactly as if fetched — but a warm one
// moves store→socket through the tier's BlobReader (a single Write for
// heap blobs, sendfile-eligible io.Copy for disk files, a pooled pread
// loop for segments) instead of materializing Page.Body. Content-Length
// comes from the stored size, so HEAD answers the size without moving a
// byte and GET responses skip chunked encoding.
func (s *Server) handleBody(w http.ResponseWriter, r *http.Request) {
	url := r.URL.Query().Get("url")
	if url == "" {
		writeError(w, fmt.Errorf("gateway: %w: missing url parameter", core.ErrInvalid))
		return
	}
	if s.routeToOwner(w, r, url) {
		return
	}
	res, bs, err := s.wh.GetBodyCtx(r.Context(), r.URL.Query().Get("user"), url)
	if err != nil {
		var open *resilience.BreakerOpenError
		if errors.As(err, &open) {
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(open.RetryAfter)))
		}
		writeError(w, err)
		return
	}
	defer bs.Close()
	h := w.Header()
	h.Set("Content-Type", "text/plain; charset=utf-8")
	h.Set("Content-Length", strconv.FormatInt(bs.Len(), 10))
	h.Set("X-CBFWW-Source", res.Source)
	h.Set("X-CBFWW-Version", strconv.Itoa(res.Page.Version))
	if res.Stale {
		h.Set("X-CBFWW-Stale", "1")
	}
	if r.Method == http.MethodHead {
		return
	}
	bs.WriteTo(w)
}

// QueryRow is one /query result row: the projected values in SELECT order,
// rendered as strings.
type QueryRow struct {
	ID     int64    `json:"id"`
	Values []string `json:"values"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	q, err := s.queryText(r)
	if err != nil {
		writeError(w, err)
		return
	}
	rows, err := s.wh.Query(q)
	if err != nil {
		writeError(w, fmt.Errorf("%w: %w", core.ErrInvalid, err))
		return
	}
	out := make([]QueryRow, len(rows))
	for i, row := range rows {
		vals := make([]string, len(row.Values))
		for j, v := range row.Values {
			vals[j] = v.String()
		}
		out[i] = QueryRow{ID: int64(row.ID), Values: vals}
	}
	writeJSON(w, http.StatusOK, map[string]any{"query": q, "rows": out})
}

// queryText extracts the query from a POST body. A form-encoded q= field
// wins when present; otherwise the raw body is the query text — so both
// `curl -d 'SELECT ...'` (which claims form encoding) and a plain text
// body work.
func (s *Server) queryText(r *http.Request) (string, error) {
	body, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.MaxQueryBytes))
	if err != nil {
		return "", fmt.Errorf("gateway: read query: %w", err)
	}
	raw := strings.TrimSpace(string(body))
	if raw == "" {
		return "", fmt.Errorf("gateway: %w: empty query body", core.ErrInvalid)
	}
	if strings.HasPrefix(r.Header.Get("Content-Type"), "application/x-www-form-urlencoded") {
		if vals, err := url.ParseQuery(raw); err == nil {
			if q := strings.TrimSpace(vals.Get("q")); q != "" {
				return q, nil
			}
		}
	}
	return raw, nil
}

// SearchHit is one /search result.
type SearchHit struct {
	Doc   int64   `json:"doc"`
	Score float64 `json:"score"`
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		writeError(w, fmt.Errorf("gateway: %w: missing q parameter", core.ErrInvalid))
		return
	}
	n := s.nParam(r, "n", 10)
	res := s.wh.SearchTiered(q, n)
	hits := make([]SearchHit, len(res.Scores))
	for i, sc := range res.Scores {
		hits[i] = SearchHit{Doc: int64(sc.Doc), Score: sc.Value}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"tier":          res.Tier.String(),
		"latency_ticks": int64(res.Latency),
		"hits":          hits,
	})
}

func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	user := r.URL.Query().Get("user")
	if user == "" {
		writeError(w, fmt.Errorf("gateway: %w: missing user parameter", core.ErrInvalid))
		return
	}
	n := s.nParam(r, "n", 10)
	recs := s.wh.RecommendPages(user, n)
	type rec struct {
		URL   string  `json:"url"`
		Score float64 `json:"score"`
	}
	out := make([]rec, len(recs))
	for i, p := range recs {
		out[i] = rec{URL: p.URL, Score: p.Score}
	}
	writeJSON(w, http.StatusOK, map[string]any{"user": user, "recommendations": out})
}

// handlePeerFetch answers a cluster-internal resident-only probe: the
// page from the local warehouse if (and only if) it is already admitted,
// 404 otherwise. It never triggers an origin fetch and never probes other
// peers, which keeps the cluster's probe graph loop-free. A resident
// serve counts as a real access — peer demand is demand, and should drive
// the same usage/priority machinery as a local client's.
func (s *Server) handlePeerFetch(w http.ResponseWriter, r *http.Request) {
	url := r.URL.Query().Get("url")
	if url == "" {
		writeError(w, fmt.Errorf("gateway: %w: missing url parameter", core.ErrInvalid))
		return
	}
	if cl := s.cfg.Cluster; cl != nil {
		w.Header().Set(peers.HeaderNode, cl.Self())
		cl.CountForwarded(r.Header.Get(peers.HeaderFrom))
	}
	res, bs, ok := s.wh.GetResidentStream(r.URL.Query().Get("user"), url)
	if !ok {
		writeError(w, fmt.Errorf("gateway: peer fetch %q: %w", url, core.ErrNotFound))
		return
	}
	defer bs.Close()
	// Framed answer: JSON meta line + raw body, streamed from the serving
	// tier. The prober recognizes the content type; plain-JSON peers never
	// ask for it (they just see a content type they don't special-case and
	// fail the probe closed, falling back to the origin).
	meta := peers.PageMeta(res.Page)
	meta.URL = url
	meta.BodyLen = bs.Len()
	meta.Source = res.Source
	meta.LatencyTicks = int64(res.Latency)
	meta.Stale = res.Stale
	line, err := peers.EncodeFrameMeta(meta)
	if err != nil {
		writeError(w, err)
		return
	}
	h := w.Header()
	h.Set("Content-Type", peers.FrameContentType)
	h.Set("Content-Length", strconv.FormatInt(int64(len(line))+bs.Len(), 10))
	w.Write(line)
	bs.WriteTo(w)
}

// handlePeerPut receives a replication push: a replica-set member admitted
// a payload and offers it so this node can hold its copy without an origin
// fetch. Admission constraints still apply, version conflicts resolve
// newest-wins, and the receiving warehouse never re-replicates what came
// in this way — so pushes cannot storm.
func (s *Server) handlePeerPut(w http.ResponseWriter, r *http.Request) {
	var pp peers.PeerPut
	if strings.HasPrefix(r.Header.Get("Content-Type"), peers.FrameContentType) {
		m, page, err := peers.ReadFrame(r.Body)
		if err != nil {
			writeError(w, fmt.Errorf("gateway: peer put: %w: %w", core.ErrInvalid, err))
			return
		}
		pp = peers.PeerPut{URL: m.URL, Page: page}
	} else if err := json.NewDecoder(io.LimitReader(r.Body, 16<<20)).Decode(&pp); err != nil {
		writeError(w, fmt.Errorf("gateway: peer put: %w: %w", core.ErrInvalid, err))
		return
	}
	if pp.URL == "" {
		pp.URL = pp.Page.URL
	}
	if pp.URL == "" {
		writeError(w, fmt.Errorf("gateway: peer put: %w: missing url", core.ErrInvalid))
		return
	}
	if cl := s.cfg.Cluster; cl != nil {
		w.Header().Set(peers.HeaderNode, cl.Self())
		cl.CountReplicaReceived(peers.LastHop(r.Header.Get(peers.HeaderFrom)))
	}
	admitted, err := s.wh.AdmitReplica(pp.URL, simweb.FetchResult{Page: pp.Page})
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"admitted": admitted})
}

// retryAfterSeconds renders a cool-down as a Retry-After value, rounding
// up so clients never come back early (and never see 0).
func retryAfterSeconds(d time.Duration) int {
	s := int((d + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}

// ResizeRequest is the POST /admin/resize body: capacity targets in
// bytes, keyed by tier name as listed in /stats' storage section. Tiers
// not named keep their current targets; the unbounded anchor cannot be
// resized.
type ResizeRequest struct {
	Targets map[string]int64 `json:"targets"`
}

// ResizeResponse echoes the tier table after the retarget, so the
// operator sees occupancy against the new capacities immediately.
type ResizeResponse struct {
	Storage []storage.TierInfo `json:"storage"`
}

// handleAdminResize retargets tier capacities on the live manager: the
// incremental re-placement demotes or re-promotes only the delta set,
// so a resize on a loaded daemon is proportional to the change, not the
// corpus. Mounted only under Config.EnableAdmin.
func (s *Server) handleAdminResize(w http.ResponseWriter, r *http.Request) {
	var req ResizeRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, fmt.Errorf("gateway: admin resize: %w: %w", core.ErrInvalid, err))
		return
	}
	if len(req.Targets) == 0 {
		writeError(w, fmt.Errorf("gateway: admin resize: %w: no targets", core.ErrInvalid))
		return
	}
	targets := make(map[string]core.Bytes, len(req.Targets))
	for name, b := range req.Targets {
		targets[name] = core.Bytes(b)
	}
	mgr := s.wh.StorageManager()
	if err := mgr.ResizeTiers(targets); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ResizeResponse{Storage: mgr.Tiers()})
}

// StatsResponse is the /stats payload.
type StatsResponse struct {
	Gateway    GatewayStats                `json:"gateway"`
	Resilience ResilienceStats             `json:"resilience"`
	Endpoints  map[string]EndpointSnapshot `json:"endpoints"`
	Warehouse  warehouse.Stats             `json:"warehouse"`
	// Shards breaks the warehouse's traffic down by lock stripe so
	// operators can see striping imbalance and per-stripe lock contention.
	Shards []ShardSnapshot `json:"shards"`
	// Cluster is the peer-ring section: membership, per-peer routing and
	// probe counters, breaker states. Always present — disabled with no
	// peers on a standalone daemon — so dashboards need no shape branch.
	Cluster peers.ClusterStats `json:"cluster"`
	// Storage is the live tier table: one row per tier with capacity
	// target, occupancy, cumulative moved/demoted bytes and access cost.
	Storage []storage.TierInfo `json:"storage"`
}

// ShardSnapshot is one warehouse lock stripe's share of the load.
type ShardSnapshot struct {
	Shard          int   `json:"shard"`
	Pages          int   `json:"pages"`
	Requests       int   `json:"requests"`
	Hits           int   `json:"hits"`
	OriginFetches  int   `json:"origin_fetches"`
	LockWaitMicros int64 `json:"lock_wait_micros"`
	LockAcquires   int64 `json:"lock_acquires"`
}

// ResilienceStats surfaces the origin-resilience counters: retries and
// breaker activity from the resilience wrapper, degraded serves from the
// warehouse, injections from the fault origin (when configured).
type ResilienceStats struct {
	Retries          uint64 `json:"retries"`
	BreakerOpens     uint64 `json:"breaker_opens"`
	BreakerHalfOpens uint64 `json:"breaker_half_opens"`
	BreakerFastFails uint64 `json:"breaker_fast_fails"`
	OpenHosts        int    `json:"open_hosts"`
	StaleServes      uint64 `json:"stale_serves"`
	FaultInjections  uint64 `json:"fault_injections"`
}

// GatewayStats are the daemon-level counters.
type GatewayStats struct {
	CoalescedFetches     uint64 `json:"coalesced_fetches"`
	InflightOriginFetchs int    `json:"inflight_origin_fetches"`
	FetchWorkers         int    `json:"fetch_workers"`
	ResidentPages        int    `json:"resident_pages"`
	Shards               int    `json:"shards"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	whStats := s.wh.Stats()
	res := ResilienceStats{StaleServes: uint64(whStats.StaleServes)}
	if s.cfg.Resilient != nil {
		rs := s.cfg.Resilient.Stats()
		res.Retries = rs.Retries
		res.BreakerOpens = rs.BreakerOpens
		res.BreakerHalfOpens = rs.BreakerHalfOpens
		res.BreakerFastFails = rs.BreakerFastFails
		res.OpenHosts = rs.OpenHosts
	}
	if s.cfg.Faults != nil {
		res.FaultInjections = uint64(s.cfg.Faults.Stats().Total())
	}
	shardStats := s.wh.ShardStats()
	shards := make([]ShardSnapshot, len(shardStats))
	for i, ss := range shardStats {
		shards[i] = ShardSnapshot{
			Shard:          ss.Shard,
			Pages:          ss.Pages,
			Requests:       ss.Requests,
			Hits:           ss.Hits,
			OriginFetches:  ss.OriginFetches,
			LockWaitMicros: ss.LockWaitMicros,
			LockAcquires:   ss.LockAcquires,
		}
	}
	writeJSON(w, http.StatusOK, StatsResponse{
		Gateway: GatewayStats{
			CoalescedFetches:     s.coalesced.Load(),
			InflightOriginFetchs: s.pool.inflight(),
			FetchWorkers:         s.pool.capacity(),
			ResidentPages:        s.wh.ResidentPages(),
			Shards:               s.wh.NumShards(),
		},
		Resilience: res,
		Endpoints:  s.metrics.Snapshot(),
		Warehouse:  whStats,
		Shards:     shards,
		Cluster:    s.cfg.Cluster.Stats(),
		Storage:    s.wh.StorageManager().Tiers(),
	})
}

// HealthzResponse is the /healthz payload: "ok" when everything this node
// can see is healthy, "degraded" with a complaint list when any peer is
// Down or any breaker (peer or origin) is open.
type HealthzResponse struct {
	Status string   `json:"status"`
	Detail []string `json:"detail,omitempty"`
}

// handleHealthz reports liveness plus the node's health view. It always
// answers 200 — a degraded node is still alive and still serving, and a
// 503 here would make load balancers and the cluster prober treat one
// peer's outage as everyone's, cascading the very failure replication
// exists to absorb. Degradation is in the body, for operators.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	var detail []string
	if cl := s.cfg.Cluster; cl != nil {
		detail = append(detail, cl.Degraded()...)
	}
	if res := s.cfg.Resilient; res != nil {
		if n := res.Stats().OpenHosts; n > 0 {
			detail = append(detail, fmt.Sprintf("%d origin breaker(s) open", n))
		}
	}
	status := "ok"
	if len(detail) > 0 {
		status = "degraded"
	}
	writeJSON(w, http.StatusOK, HealthzResponse{Status: status, Detail: detail})
}
